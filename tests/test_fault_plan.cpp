// Tests for the shared fault-injection plan: spec parsing round-trips,
// validation, and the injector's frame/window semantics that all three
// executors (threaded, UDP, CST simulation) rely on.
#include "runtime/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ssr::runtime {
namespace {

TEST(FaultPlan, EmptyByDefault) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.describe(), "");
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ;  ").empty());
}

TEST(FaultPlan, ParsesProbabilities) {
  const FaultPlan plan =
      FaultPlan::parse("drop=0.1;dup=0.05;reorder=0.02;corrupt=0.3;"
                       "corrupt-bits=3");
  EXPECT_DOUBLE_EQ(plan.probabilities.drop, 0.1);
  EXPECT_DOUBLE_EQ(plan.probabilities.duplicate, 0.05);
  EXPECT_DOUBLE_EQ(plan.probabilities.reorder, 0.02);
  EXPECT_DOUBLE_EQ(plan.probabilities.corrupt, 0.3);
  EXPECT_EQ(plan.probabilities.corrupt_bits, 3u);
  EXPECT_TRUE(plan.windows.empty());
}

TEST(FaultPlan, ParsesWindows) {
  const FaultPlan plan = FaultPlan::parse(
      "burst@200ms-400ms;linkdown@0.5s-600ms:link=1->2;"
      "partition@700ms-750ms:cut=0/2;pause@1us-2us:node=1;"
      "crash@900000-950000:node=3");
  ASSERT_EQ(plan.windows.size(), 5u);
  EXPECT_EQ(plan.windows[0].kind, FaultWindow::Kind::kBurstLoss);
  EXPECT_DOUBLE_EQ(plan.windows[0].begin_us, 200000.0);
  EXPECT_DOUBLE_EQ(plan.windows[0].end_us, 400000.0);
  EXPECT_EQ(plan.windows[0].from, kAnyNode);
  EXPECT_EQ(plan.windows[0].to, kAnyNode);
  EXPECT_EQ(plan.windows[1].kind, FaultWindow::Kind::kLinkDown);
  EXPECT_DOUBLE_EQ(plan.windows[1].begin_us, 500000.0);
  EXPECT_EQ(plan.windows[1].from, 1u);
  EXPECT_EQ(plan.windows[1].to, 2u);
  EXPECT_EQ(plan.windows[2].kind, FaultWindow::Kind::kPartition);
  EXPECT_EQ(plan.windows[2].cut_a, 0u);
  EXPECT_EQ(plan.windows[2].cut_b, 2u);
  EXPECT_EQ(plan.windows[3].kind, FaultWindow::Kind::kNodePause);
  EXPECT_EQ(plan.windows[3].node, 1u);
  EXPECT_EQ(plan.windows[4].kind, FaultWindow::Kind::kCrashRestart);
  EXPECT_EQ(plan.windows[4].node, 3u);
  EXPECT_DOUBLE_EQ(plan.windows[4].begin_us, 900000.0);
}

TEST(FaultPlan, DescribeRoundTrips) {
  const char* spec =
      "drop=0.1;dup=0.05;corrupt=0.25;corrupt-bits=2;"
      "burst@200ms-400ms;linkdown@500ms-600ms:link=1->*;"
      "partition@700ms-750ms:cut=0/2;crash@900ms-950ms:node=3";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan reparsed = FaultPlan::parse(plan.describe());
  EXPECT_EQ(plan.describe(), reparsed.describe());
  ASSERT_EQ(reparsed.windows.size(), 4u);
  EXPECT_DOUBLE_EQ(reparsed.probabilities.drop, 0.1);
  EXPECT_EQ(reparsed.windows[1].from, 1u);
  EXPECT_EQ(reparsed.windows[1].to, kAnyNode);
}

TEST(FaultPlan, ParseErrors) {
  EXPECT_THROW(FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("frobnicate=0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("burst@100"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("burst@100-200:link=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("meteor@100-200"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@100-200:cut=0/1;corrupt-bits=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("pause@100ms-50ly:node=1"),
               std::invalid_argument);
}

TEST(FaultPlan, ValidationCatchesBadRanges) {
  // begin >= end
  FaultPlan plan = FaultPlan::parse("burst@200ms-100ms");
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  // node out of range
  plan = FaultPlan::parse("crash@100ms-200ms:node=7");
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  // crash needs a concrete node
  plan = FaultPlan::parse("crash@100ms-200ms");
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  // partition cut out of range
  plan = FaultPlan::parse("partition@100ms-200ms:cut=0/9");
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  // in-range versions are fine
  EXPECT_NO_THROW(FaultPlan::parse("crash@100ms-200ms:node=3").validate(4));
  EXPECT_NO_THROW(
      FaultPlan::parse("partition@100ms-200ms:cut=0/2").validate(4));
}

TEST(FaultPlan, WithLegacyIsProbabilityUnion) {
  FaultPlan plan;
  plan.probabilities.drop = 0.5;
  const FaultPlan merged = plan.with_legacy(0.5, 0.25);
  EXPECT_DOUBLE_EQ(merged.probabilities.drop, 0.75);
  EXPECT_DOUBLE_EQ(merged.probabilities.corrupt, 0.25);
  // Folding zeros changes nothing.
  const FaultPlan same = plan.with_legacy(0.0);
  EXPECT_DOUBLE_EQ(same.probabilities.drop, 0.5);
}

TEST(FaultInjector, EmptyPlanConsumesNoRandomness) {
  FaultInjector injector(FaultPlan{}, 4);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) {
    const FrameFate fate = injector.on_send(0, 1, 0.0, a);
    EXPECT_FALSE(fate.drop);
    EXPECT_FALSE(fate.duplicate);
    EXPECT_FALSE(fate.reorder);
    EXPECT_EQ(fate.corrupt_bits, 0u);
  }
  // a must not have advanced relative to b: an empty plan is inert, which
  // is what keeps pre-fault-plan seeded runs bit-identical.
  EXPECT_EQ(a(), b());
}

TEST(FaultInjector, WindowDropConsumesNoRandomness) {
  const FaultPlan plan = FaultPlan::parse("drop=0.5;burst@100-200");
  FaultInjector injector(plan, 4);
  Rng a(42);
  Rng b(42);
  const FrameFate fate = injector.on_send(0, 1, 150.0, a);
  EXPECT_TRUE(fate.drop);
  EXPECT_TRUE(fate.window_drop);
  EXPECT_EQ(a(), b());  // the probability draws were skipped entirely
}

TEST(FaultInjector, ProbabilisticFatesAreSeeded) {
  const FaultPlan plan = FaultPlan::parse("drop=0.3;dup=0.2;reorder=0.1");
  FaultInjector injector(plan, 4);
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::size_t drops = 0, dups = 0, reorders = 0;
    for (int i = 0; i < 4000; ++i) {
      const FrameFate fate = injector.on_send(0, 1, 0.0, rng);
      if (fate.drop) ++drops;
      if (fate.duplicate) ++dups;
      if (fate.reorder) ++reorders;
    }
    return std::tuple{drops, dups, reorders};
  };
  const auto [drops, dups, reorders] = run(7);
  // Duplicate/reorder are only drawn for frames that survive the drop, so
  // their means are conditional: 4000 * 0.7 * p.
  EXPECT_NEAR(static_cast<double>(drops), 1200.0, 150.0);
  EXPECT_NEAR(static_cast<double>(dups), 560.0, 120.0);
  EXPECT_NEAR(static_cast<double>(reorders), 280.0, 100.0);
  EXPECT_EQ(run(7), run(7));  // same seed, same fault sequence
}

TEST(FaultInjector, LinkSelectorsMatchDirectionally) {
  const FaultPlan plan = FaultPlan::parse("linkdown@0-100:link=1->2");
  FaultInjector injector(plan, 4);
  Rng rng(1);
  EXPECT_TRUE(injector.on_send(1, 2, 50.0, rng).window_drop);
  EXPECT_FALSE(injector.on_send(2, 1, 50.0, rng).drop);  // reverse flows
  EXPECT_FALSE(injector.on_send(1, 2, 150.0, rng).drop);  // window over
  // Wildcard sender.
  FaultInjector any(FaultPlan::parse("burst@0-100:link=*->2"), 4);
  EXPECT_TRUE(any.on_send(0, 2, 10.0, rng).window_drop);
  EXPECT_TRUE(any.on_send(3, 2, 10.0, rng).window_drop);
  EXPECT_FALSE(any.on_send(2, 3, 10.0, rng).drop);
}

TEST(FaultInjector, PartitionCutsBothDirectionsOfBothEdges) {
  // cut=0/2 on a 4-ring removes edges (0,1) and (2,3) in both directions,
  // splitting {1,2} from {3,0}.
  const FaultPlan plan = FaultPlan::parse("partition@0-100:cut=0/2");
  FaultInjector injector(plan, 4);
  Rng rng(1);
  EXPECT_TRUE(injector.on_send(0, 1, 50.0, rng).window_drop);
  EXPECT_TRUE(injector.on_send(1, 0, 50.0, rng).window_drop);
  EXPECT_TRUE(injector.on_send(2, 3, 50.0, rng).window_drop);
  EXPECT_TRUE(injector.on_send(3, 2, 50.0, rng).window_drop);
  // Edges inside each side stay up.
  EXPECT_FALSE(injector.on_send(1, 2, 50.0, rng).drop);
  EXPECT_FALSE(injector.on_send(3, 0, 50.0, rng).drop);
}

TEST(FaultInjector, NodeWindowsBlockAndCrashFiresOnce) {
  const FaultPlan plan =
      FaultPlan::parse("pause@0-100:node=1;crash@200-300:node=2");
  FaultInjector injector(plan, 4);
  Rng rng(1);
  // Pause: node 1 is down, frames touching it are dropped.
  EXPECT_TRUE(injector.node_down(1, 50.0));
  EXPECT_FALSE(injector.node_down(1, 150.0));
  EXPECT_TRUE(injector.on_send(0, 1, 50.0, rng).window_drop);
  EXPECT_TRUE(injector.on_send(1, 2, 50.0, rng).window_drop);
  // Crash: fires exactly once at/after the window begin, and the node is
  // down for the window.
  EXPECT_FALSE(injector.take_crash(2, 100.0));
  EXPECT_TRUE(injector.take_crash(2, 250.0));
  EXPECT_FALSE(injector.take_crash(2, 260.0));
  EXPECT_TRUE(injector.node_down(2, 250.0));
  EXPECT_FALSE(injector.node_down(2, 350.0));
  // rearm() re-enables the crash for a restart cycle.
  injector.rearm();
  EXPECT_TRUE(injector.take_crash(2, 250.0));
}

TEST(FaultInjector, RejectsInvalidPlanAtConstruction) {
  EXPECT_THROW(FaultInjector(FaultPlan::parse("crash@0-100:node=9"), 4),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(FaultPlan{}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ssr::runtime
