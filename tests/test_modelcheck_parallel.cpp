// The parallel checker's contract: CheckReport is bit-identical at every
// thread count AND in every Phase B storage mode — same witnesses, same
// worst case, same height table. The differential tests below pin that by
// running every covered (n, K) in all four storage backends (legacy CSR,
// compressed move records, CSR-free, disk-spilled records) at 1, 2 and 8
// workers (1 exercises the solo fast path, the others the shared atomic
// counters), plus unit tests for the underlying ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"
#include "verify/checkers.hpp"

namespace {

using namespace ssr;

TEST(ThreadPool, SizeIsAtLeastOne) {
  util::ThreadPool solo(1);
  EXPECT_EQ(solo.size(), 1u);
  util::ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
  util::ThreadPool hw(0);
  EXPECT_GE(hw.size(), 1u);
}

TEST(ThreadPool, RunOnAllVisitsEveryWorkerOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(pool.size());
  pool.run_on_all([&](std::size_t id) { ++visits[id]; });
  for (std::size_t id = 0; id < pool.size(); ++id) {
    EXPECT_EQ(visits[id].load(), 1) << "worker " << id;
  }
}

TEST(ThreadPool, ForChunksCoversRangeExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    util::ThreadPool pool(threads);
    constexpr std::uint64_t kBegin = 7, kEnd = 1234;
    std::vector<std::atomic<int>> hits(kEnd);
    pool.for_chunks(kBegin, kEnd, 17,
                    [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
                      ASSERT_LE(lo, hi);
                      ASSERT_LE(hi, kEnd);
                      for (std::uint64_t i = lo; i < hi; ++i) ++hits[i];
                    });
    for (std::uint64_t i = 0; i < kEnd; ++i) {
      EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0) << "index " << i;
    }
  }
}

TEST(ThreadPool, ForChunksEmptyRangeIsNoop) {
  util::ThreadPool pool(2);
  bool called = false;
  pool.for_chunks(5, 5, 8, [&](std::size_t, std::uint64_t, std::uint64_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ThreadPool pool(threads);
    EXPECT_THROW(pool.run_on_all([&](std::size_t) {
      throw std::runtime_error("boom");
    }),
                 std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<std::uint64_t> sum{0};
    pool.for_chunks(0, 100, 9,
                    [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
                      for (std::uint64_t i = lo; i < hi; ++i) sum += i;
                    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

// --- differential report tests --------------------------------------------

void expect_identical(const verify::CheckReport& a,
                      const verify::CheckReport& b, const char* what) {
  EXPECT_EQ(a.total_configs, b.total_configs) << what;
  EXPECT_EQ(a.legitimate_configs, b.legitimate_configs) << what;
  EXPECT_EQ(a.deadlock_free, b.deadlock_free) << what;
  EXPECT_EQ(a.deadlock_witness, b.deadlock_witness) << what;
  EXPECT_EQ(a.closure_holds, b.closure_holds) << what;
  EXPECT_EQ(a.closure_witness, b.closure_witness) << what;
  EXPECT_EQ(a.token_bounds_hold, b.token_bounds_hold) << what;
  EXPECT_EQ(a.token_witness, b.token_witness) << what;
  EXPECT_EQ(a.convergence_holds, b.convergence_holds) << what;
  EXPECT_EQ(a.cycle_witness, b.cycle_witness) << what;
  EXPECT_EQ(a.worst_case_steps, b.worst_case_steps) << what;
  EXPECT_EQ(a.worst_case_witness, b.worst_case_witness) << what;
  EXPECT_EQ(a.min_privileged_anywhere, b.min_privileged_anywhere) << what;
  EXPECT_EQ(a.heights, b.heights) << what;
}

template <typename Checker>
void check_thread_invariance(const Checker& checker,
                             verify::CheckOptions options, const char* what) {
  options.keep_heights = true;
  options.threads = 1;
  options.storage = verify::PhaseBStorage::kLegacyCsr;
  const verify::CheckReport baseline = checker.run(options);
  EXPECT_TRUE(baseline.all_ok()) << what;
  EXPECT_FALSE(baseline.heights.empty()) << what;
  for (verify::PhaseBStorage storage : {verify::PhaseBStorage::kLegacyCsr,
                                        verify::PhaseBStorage::kCompressed,
                                        verify::PhaseBStorage::kCsrFree,
                                        verify::PhaseBStorage::kSpill}) {
    options.storage = storage;
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      if (storage == verify::PhaseBStorage::kLegacyCsr && threads == 1) {
        continue;  // the baseline itself
      }
      options.threads = threads;
      const verify::CheckReport got = checker.run(options);
      std::string label = std::string(what) + " storage=" +
                          verify::to_string(storage) +
                          " threads=" + std::to_string(threads);
      expect_identical(baseline, got, label.c_str());
      EXPECT_EQ(got.stats.mode, storage) << label;
      if (storage == verify::PhaseBStorage::kSpill) {
        EXPECT_GT(got.stats.spill_bytes, 0u) << label;
        EXPECT_GT(got.stats.blocks_read, 0u) << label;
        EXPECT_GE(got.stats.read_amplification, 1.0) << label;
      }
    }
  }
}

TEST(ModelCheckParallel, SsrMinReportsAreThreadCountInvariant) {
  verify::CheckOptions options;  // defaults: privileged in [1, 2]
  check_thread_invariance(verify::make_ssrmin_checker(3, 4), options,
                          "ssrmin(3,4)");
  check_thread_invariance(verify::make_ssrmin_checker(3, 6), options,
                          "ssrmin(3,6)");
  check_thread_invariance(verify::make_ssrmin_checker(4, 5), options,
                          "ssrmin(4,5)");
}

TEST(ModelCheckParallel, DijkstraReportsAreThreadCountInvariant) {
  verify::CheckOptions options;
  options.min_privileged = 1;
  options.max_privileged = 1;
  check_thread_invariance(verify::make_kstate_checker(3, 4), options,
                          "dijkstra(3,4)");
  check_thread_invariance(verify::make_kstate_checker(4, 5), options,
                          "dijkstra(4,5)");
  check_thread_invariance(verify::make_kstate_checker(5, 6), options,
                          "dijkstra(5,6)");
}

TEST(ModelCheckParallel, BigSpacesAreModeAndThreadInvariant) {
  // The acceptance-sized differential: ssrmin(5,6) (8M configs),
  // dijkstra(6,7) and dijkstra(8,9) (43M configs) in every storage mode
  // at 1/2/8 workers, heights included. Gated behind SSRING_TEST_BIG=1
  // because the 27 full checks take tens of minutes on modest hardware.
  if (std::getenv("SSRING_TEST_BIG") == nullptr) {
    GTEST_SKIP() << "set SSRING_TEST_BIG=1 to run the large differential";
  }
  verify::CheckOptions ssr_options;
  check_thread_invariance(verify::make_ssrmin_checker(5, 6), ssr_options,
                          "ssrmin(5,6)");
  verify::CheckOptions dij_options;
  dij_options.min_privileged = 1;
  dij_options.max_privileged = 1;
  check_thread_invariance(verify::make_kstate_checker(6, 7), dij_options,
                          "dijkstra(6,7)");
  check_thread_invariance(verify::make_kstate_checker(8, 9), dij_options,
                          "dijkstra(8,9)");
}

TEST(ModelCheckParallel, AutoSpillsUnderTightBudgetAndMatchesInRam) {
  // The auto-picker's out-of-core tier, in the default suite: a budget
  // squeezed between the spill mode's resident projection and the
  // csr-free projection (the cheapest in-RAM mode) must make kAuto spill
  // — and the spilled report must match an unconstrained compressed run
  // bit-for-bit. The budget arrives via SSRING_CHECK_MEMORY_BUDGET, so
  // the env path of the default-budget resolution is on the hook too.
  const auto checker = verify::make_ssrmin_checker(4, 5);
  const std::uint64_t total = checker.codec().total();
  const std::uint64_t proj_spill = verify::projected_spill_resident_bytes(
      total, 4, checker.codec().radix());
  const std::uint64_t proj_free = verify::projected_csrfree_bytes(total);
  ASSERT_LT(proj_spill, proj_free)
      << "watch-free spill must undercut csr-free or auto can never spill";
  const std::uint64_t budget = (proj_spill + proj_free) / 2;

  verify::CheckOptions options;
  options.keep_heights = true;
  options.threads = 2;
  const verify::CheckReport in_ram = checker.run(options);
  EXPECT_EQ(in_ram.stats.mode, verify::PhaseBStorage::kCompressed);

  ASSERT_EQ(setenv("SSRING_CHECK_MEMORY_BUDGET",
                   std::to_string(budget).c_str(), 1),
            0);
  const verify::CheckReport spilled = checker.run(options);
  ASSERT_EQ(unsetenv("SSRING_CHECK_MEMORY_BUDGET"), 0);

  EXPECT_EQ(spilled.stats.mode, verify::PhaseBStorage::kSpill);
  EXPECT_EQ(spilled.stats.memory_budget_bytes, budget);
  EXPECT_GT(spilled.stats.spill_bytes, 0u);
  EXPECT_LE(spilled.stats.measured_peak_bytes,
            spilled.stats.projected_peak_bytes);
  expect_identical(in_ram, spilled, "ssrmin(4,5) forced spill");
}

TEST(ModelCheckParallel, DefaultThreadsMatchesSequential) {
  const auto checker = verify::make_ssrmin_checker(3, 5);
  verify::CheckOptions options;
  options.keep_heights = true;
  options.threads = 1;
  const verify::CheckReport sequential = checker.run(options);
  options.threads = 0;  // one worker per hardware thread
  expect_identical(sequential, checker.run(options), "ssrmin(3,5) hw");
}

// --- sliced Phase A vs the scalar odometer sweep ---------------------------

/// The sliced Phase A contract: against a scalar-sweep baseline, the
/// bit-sliced A1/A2 must reproduce the report bit-for-bit — same witnesses
/// (lowest-index, so lane masking and chunk order are on the hook), same
/// counts, same heights — at every thread count and in every Phase B
/// storage mode.
template <typename Checker>
void check_phase_a_invariance(const Checker& checker,
                              verify::CheckOptions options, const char* what) {
  ASSERT_TRUE(checker.has_phase_a_slices()) << what;
  options.keep_heights = true;
  options.threads = 1;
  options.phase_a = verify::PhaseAMode::kScalar;
  const verify::CheckReport baseline = checker.run(options);
  EXPECT_TRUE(baseline.all_ok()) << what;
  EXPECT_FALSE(baseline.stats.phase_a_sliced) << what;
  options.phase_a = verify::PhaseAMode::kSliced;
  for (verify::PhaseBStorage storage : {verify::PhaseBStorage::kLegacyCsr,
                                        verify::PhaseBStorage::kCompressed,
                                        verify::PhaseBStorage::kCsrFree,
                                        verify::PhaseBStorage::kSpill}) {
    options.storage = storage;
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      options.threads = threads;
      const verify::CheckReport got = checker.run(options);
      std::string label = std::string(what) + " sliced storage=" +
                          verify::to_string(storage) +
                          " threads=" + std::to_string(threads);
      expect_identical(baseline, got, label.c_str());
      EXPECT_TRUE(got.stats.phase_a_sliced) << label;
      EXPECT_GE(got.stats.phase_a_lanes, 64u) << label;
      EXPECT_FALSE(got.stats.phase_a_backend.empty()) << label;
    }
  }
}

TEST(ModelCheckSlicedPhaseA, SsrMinMatchesScalarSweep) {
  verify::CheckOptions options;  // defaults: privileged in [1, 2]
  // K = 4: the dense state radix 4K = 16 is a power of two, so the
  // odometer fill rides the digit carry-out wrap path.
  check_phase_a_invariance(verify::make_ssrmin_checker(3, 4), options,
                           "ssrmin(3,4)");
  check_phase_a_invariance(verify::make_ssrmin_checker(3, 5), options,
                           "ssrmin(3,5)");
  check_phase_a_invariance(verify::make_ssrmin_checker(4, 5), options,
                           "ssrmin(4,5)");
}

TEST(ModelCheckSlicedPhaseA, DijkstraMatchesScalarSweep) {
  verify::CheckOptions options;
  options.min_privileged = 1;
  options.max_privileged = 1;
  check_phase_a_invariance(verify::make_kstate_checker(3, 4), options,
                           "dijkstra(3,4)");
  // K = 2^d wrap; 4^4 = 256 configs keeps every chunk partially filled.
  check_phase_a_invariance(verify::make_kstate_checker(4, 4), options,
                           "dijkstra(4,4)");
  check_phase_a_invariance(verify::make_kstate_checker(5, 6), options,
                           "dijkstra(5,6)");
}

TEST(ModelCheckSlicedPhaseA, AutoModeUsesSlicesAndMatchesScalar) {
  // kAuto (the default) must pick the sliced path on the library-made
  // checkers and still answer identically to a forced-scalar run.
  const auto checker = verify::make_ssrmin_checker(3, 6);
  verify::CheckOptions options;
  options.keep_heights = true;
  options.threads = 2;
  const verify::CheckReport auto_run = checker.run(options);
  EXPECT_TRUE(auto_run.stats.phase_a_sliced);
  options.phase_a = verify::PhaseAMode::kScalar;
  const verify::CheckReport scalar_run = checker.run(options);
  EXPECT_FALSE(scalar_run.stats.phase_a_sliced);
  expect_identical(scalar_run, auto_run, "ssrmin(3,6) auto vs scalar");
}

}  // namespace
