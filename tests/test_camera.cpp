// Tests for the camera-network application layer: the coverage/energy
// trade-off the paper's introduction motivates. SSRmin must deliver
// perfect coverage at a fraction of the always-on energy bill; the raw
// Dijkstra token leaves blackout windows.
#include "inclusion/camera.hpp"

#include <gtest/gtest.h>

#include "inclusion/critical_section.hpp"

namespace ssr::incl {
namespace {

CameraParams small_params(std::uint64_t seed = 1) {
  CameraParams p;
  p.node_count = 6;
  p.duration = 1500.0;
  p.net.seed = seed;
  return p;
}

TEST(CameraParams, Validation) {
  CameraParams p = small_params();
  EXPECT_NO_THROW(p.validate());
  p.node_count = 2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_params();
  p.duration = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = small_params();
  p.initial_battery = 1000.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0}), 1.0);
  // One node does everything out of four: index = 1/4.
  EXPECT_DOUBLE_EQ(jain_fairness({8.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(Camera, SsrMinPerfectCoverage) {
  const CameraReport r = run_camera(CameraPolicy::kSsrMin, small_params());
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  EXPECT_DOUBLE_EQ(r.unmonitored_time, 0.0);
  EXPECT_EQ(r.blackout_intervals, 0u);
  EXPECT_GT(r.handovers, 10u);
  // At most two cameras on at once on average (Theorem 1's band).
  EXPECT_LE(r.mean_active, 2.0);
  EXPECT_GE(r.mean_active, 1.0);
}

TEST(Camera, SsrMinDutyIsFairlyShared) {
  const CameraReport r = run_camera(CameraPolicy::kSsrMin, small_params(3));
  ASSERT_EQ(r.active_time.size(), 6u);
  for (double t : r.active_time) EXPECT_GT(t, 0.0) << "a camera never served";
  EXPECT_GT(r.duty_fairness, 0.8);
}

TEST(Camera, DijkstraLeavesBlackouts) {
  const CameraReport r = run_camera(CameraPolicy::kDijkstra, small_params());
  EXPECT_LT(r.coverage, 1.0);
  EXPECT_GT(r.blackout_intervals, 0u);
  EXPECT_GT(r.unmonitored_time, 0.0);
}

TEST(Camera, DualDijkstraBetterButNotPerfect) {
  const CameraReport dual =
      run_camera(CameraPolicy::kDualDijkstra, small_params());
  EXPECT_GT(dual.unmonitored_time, 0.0);  // Figure 12: still blacks out
}

TEST(Camera, AllActiveIsPerfectButExpensive) {
  const CameraParams p = small_params();
  const CameraReport all = run_camera(CameraPolicy::kAllActive, p);
  const CameraReport ssr = run_camera(CameraPolicy::kSsrMin, p);
  EXPECT_DOUBLE_EQ(all.coverage, 1.0);
  EXPECT_EQ(all.handovers, 0u);
  // Energy: all-on burns ~n*drain*duration; SSRmin at most ~2 active.
  EXPECT_GT(all.energy_consumed, 2.5 * ssr.energy_consumed);
  // All-on drains batteries into the ground with these rates; SSRmin keeps
  // them healthier.
  EXPECT_LT(all.min_battery, ssr.min_battery);
}

TEST(Camera, BatteryStaysWithinPhysicalBounds) {
  for (auto policy : {CameraPolicy::kSsrMin, CameraPolicy::kDijkstra,
                      CameraPolicy::kAllActive}) {
    const CameraParams p = small_params(9);
    const CameraReport r = run_camera(policy, p);
    ASSERT_EQ(r.final_battery.size(), p.node_count);
    for (double b : r.final_battery) {
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, p.battery_capacity);
    }
  }
}

TEST(Camera, ReportDurationsMatchRequest) {
  const CameraParams p = small_params(5);
  const CameraReport r = run_camera(CameraPolicy::kSsrMin, p);
  EXPECT_NEAR(r.duration, p.duration, 1e-6);
  // Active time per node cannot exceed the run duration.
  for (double t : r.active_time) EXPECT_LE(t, p.duration + 1e-9);
}

TEST(Camera, PolicyNames) {
  EXPECT_EQ(to_string(CameraPolicy::kSsrMin), "ssrmin");
  EXPECT_EQ(to_string(CameraPolicy::kDijkstra), "dijkstra");
  EXPECT_EQ(to_string(CameraPolicy::kDualDijkstra), "dual-dijkstra");
  EXPECT_EQ(to_string(CameraPolicy::kAllActive), "all-active");
}

TEST(Camera, SpecMonitorIntegration) {
  // Route the SSRmin camera run through a (1,2)-CS monitor: zero
  // violations expected.
  const CameraParams p = small_params(13);
  // run_camera already asserts coverage; here check with the spec monitor
  // semantics over time-weighted data derived from the report.
  const CameraReport r = run_camera(CameraPolicy::kSsrMin, p);
  SpecMonitor monitor(ssrmin_spec());
  // mean_active in [1,2] plus zero unmonitored time implies compliance of
  // the time-weighted holder signal at the endpoints we can observe here.
  EXPECT_GE(r.mean_active, 1.0);
  EXPECT_LE(r.mean_active, 2.0);
  monitor.observe_interval(r.duration - r.unmonitored_time, 1);
  if (r.unmonitored_time > 0) {
    monitor.observe_interval(r.unmonitored_time, 0);
  }
  EXPECT_TRUE(monitor.clean());
}

}  // namespace
}  // namespace ssr::incl
