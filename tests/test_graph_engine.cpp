// Tests for the general-graph execution engine itself (the MIS tests
// exercise it indirectly; these pin the engine API semantics).
#include "graph/protocol.hpp"

#include <gtest/gtest.h>

#include "graph/mis.hpp"
#include "stabilizing/daemon.hpp"

namespace ssr::graph {
namespace {

constexpr auto kOut = MisStatus::kOut;
constexpr auto kWait = MisStatus::kWait;
constexpr auto kIn = MisStatus::kIn;

MisConfig statuses(std::initializer_list<MisStatus> list) {
  MisConfig c;
  for (auto s : list) c.push_back(MisState{s});
  return c;
}

TEST(GraphEngine, RejectsSizeMismatch) {
  TurauMis mis(Topology::path(3));
  EXPECT_THROW(GraphEngine<TurauMis>(mis, MisConfig(2)),
               std::invalid_argument);
}

TEST(GraphEngine, CountersTrackStepsAndMoves) {
  TurauMis mis(Topology::path(3));
  GraphEngine<TurauMis> engine(mis, statuses({kOut, kOut, kOut}));
  stab::SynchronousDaemon daemon;
  ASSERT_TRUE(engine.step_with(daemon));  // all three volunteer
  EXPECT_EQ(engine.steps(), 1u);
  EXPECT_EQ(engine.moves(), 3u);
}

TEST(GraphEngine, CompositeAtomicitySnapshotSemantics) {
  // Nodes 0 and 2 of a path both commit simultaneously (they are not
  // adjacent); node 1 must still see the OLD (WAIT) states this step.
  TurauMis mis(Topology::path(3));
  GraphEngine<TurauMis> engine(mis, statuses({kWait, kOut, kWait}));
  // Node 1 is OUT with no IN neighbor: enabled (volunteer). 0 and 2 are
  // WAIT with no IN neighbor and no smaller WAIT neighbor (1 is OUT):
  // both commit.
  const auto enabled = engine.enabled_indices();
  EXPECT_EQ(enabled, (std::vector<std::size_t>{0, 1, 2}));
  const std::vector<std::size_t> all{0, 1, 2};
  engine.step(all);
  EXPECT_EQ(engine.config()[0].status, kIn);
  EXPECT_EQ(engine.config()[2].status, kIn);
  // Node 1 volunteered against the pre-step snapshot (no IN neighbor yet).
  EXPECT_EQ(engine.config()[1].status, kWait);
  // Next step it retreats: both neighbors are IN now.
  EXPECT_EQ(engine.enabled_rule(1), TurauMis::kRuleRetreat);
}

TEST(GraphEngine, StepRejectsDisabledNode) {
  TurauMis mis(Topology::path(3));
  GraphEngine<TurauMis> engine(mis, statuses({kIn, kOut, kOut}));
  // Node 1 is OUT with an IN neighbor: disabled.
  const std::vector<std::size_t> sel{1};
  EXPECT_THROW(engine.step(sel), std::invalid_argument);
}

TEST(GraphEngine, ResetAndCorrupt) {
  TurauMis mis(Topology::path(4));
  GraphEngine<TurauMis> engine(mis, statuses({kIn, kOut, kIn, kOut}));
  engine.corrupt(1, MisState{kIn});
  EXPECT_EQ(engine.config()[1].status, kIn);
  EXPECT_THROW(engine.corrupt(9, MisState{}), std::invalid_argument);
  engine.reset(statuses({kOut, kOut, kOut, kOut}));
  EXPECT_EQ(engine.config()[0].status, kOut);
  EXPECT_THROW(engine.reset(MisConfig(2)), std::invalid_argument);
}

TEST(GraphEngine, RunToSilenceReportsBudgetExhaustion) {
  // A two-node WAIT pair on a path oscillates never: it converges; to test
  // the nullopt branch give a budget of zero on a non-silent start.
  TurauMis mis(Topology::path(3));
  GraphEngine<TurauMis> engine(mis, statuses({kOut, kOut, kOut}));
  stab::SynchronousDaemon daemon;
  EXPECT_EQ(run_to_silence(engine, daemon, 0), std::nullopt);
}

}  // namespace
}  // namespace ssr::graph
