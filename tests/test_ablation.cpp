// Ablation of the secondary-token condition (paper §3.1): the paper
// rejects the simpler condition "tra_i = 1" because the secondary token
// then goes extinct whenever the two tokens are co-located. These tests
// measure exactly that:
//   * with the full condition, the secondary token exists at every
//     simulated instant (its count never drops to zero);
//   * with the weak condition, the secondary token has real extinction
//     periods;
//   * node-level coverage (primary OR secondary) remains intact in both
//     cases in the state-reading model — the weak condition's deficiency
//     is specifically the loss of the always-one-secondary property.
#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"

namespace ssr::msgpass {
namespace {

NetworkParams net(std::uint64_t seed) {
  NetworkParams p;
  p.seed = seed;
  return p;
}

TEST(WeakSecondary, StateReadingShapesLoseTheSecondary) {
  // In legitimate shape (b) — holder <1.0> — the weak condition grants no
  // secondary token to anyone, while the full condition keeps it at the
  // holder.
  core::SsrMinRing ring(5, 6);
  core::SsrConfig config(5);
  for (auto& s : config) s.x = 2;
  config[0].rts = true;  // shape (b): P0 holds <1.0>
  ASSERT_TRUE(core::is_legitimate(ring, config));
  std::size_t strong = 0;
  std::size_t weak = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& succ = config[stab::succ_index(i, 5)];
    if (ring.holds_secondary(config[i], succ)) ++strong;
    if (ring.holds_secondary_weak(config[i])) ++weak;
  }
  EXPECT_EQ(strong, 1u);
  EXPECT_EQ(weak, 0u);  // the extinction the paper describes
}

TEST(WeakSecondary, EveryLegitimateShapeKeepsOneStrongSecondary) {
  for (std::size_t n : {3u, 5u, 8u}) {
    core::SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
    for (const auto& config : core::enumerate_legitimate(ring)) {
      std::size_t strong = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (ring.holds_secondary(config[i],
                                 config[stab::succ_index(i, n)]))
          ++strong;
      }
      EXPECT_EQ(strong, 1u);
    }
  }
}

TEST(WeakSecondary, MessagePassingExtinctionMeasured) {
  // Count *secondary tokens only* along the same CST execution: strong
  // condition -> never zero; weak condition -> zero for a substantial
  // fraction of the run (all shape-(b) time plus the Rule-1->Rule-3
  // transients).
  const std::size_t n = 5;
  core::SsrMinRing ring(n, 6);
  auto strong_sim = make_ssrmin_secondary_only_cst(
      ring, core::canonical_legitimate(ring, 0), net(3), true);
  auto weak_sim = make_ssrmin_secondary_only_cst(
      ring, core::canonical_legitimate(ring, 0), net(3), false);
  const CoverageStats strong = strong_sim.run(2000.0);
  const CoverageStats weak = weak_sim.run(2000.0);
  // Identical dynamics (same seed, same protocol), different predicate.
  EXPECT_EQ(strong.rule_executions, weak.rule_executions);
  EXPECT_EQ(strong.min_holders, 1u);
  EXPECT_EQ(strong.zero_intervals, 0u);
  EXPECT_EQ(weak.min_holders, 0u);
  EXPECT_GT(weak.zero_intervals, 100u);
  EXPECT_GT(weak.zero_token_time, 0.1 * weak.observed_time);
}

TEST(WeakSecondary, NodeCoverageSurvivesWithPromptLinks) {
  // With prompt FIFO links even the weak predicate keeps node-level
  // coverage (the primary fills the gap) — the honest finding of our
  // reproduction; see EXPERIMENTS.md E14 for the discussion.
  const std::size_t n = 5;
  core::SsrMinRing ring(n, 6);
  auto sim = make_ssrmin_weak_cst(ring, core::canonical_legitimate(ring, 0),
                                  net(9));
  const CoverageStats stats = sim.run(2000.0);
  EXPECT_GE(stats.min_holders, 1u);
  EXPECT_LE(stats.max_holders, 2u);
}

TEST(WeakSecondary, StateReadingPrivilegedBandIdentical) {
  // Along state-reading executions both predicates keep the privileged
  // count in [1, 2] (the weak one leans on the primary).
  const std::size_t n = 6;
  core::SsrMinRing ring(n, 7);
  auto strong_sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 1),
                                    net(11));
  auto weak_sim = make_ssrmin_weak_cst(
      ring, core::canonical_legitimate(ring, 1), net(11));
  const CoverageStats strong = strong_sim.run(1500.0);
  const CoverageStats weak = weak_sim.run(1500.0);
  EXPECT_EQ(strong.min_holders, 1u);
  EXPECT_LE(strong.max_holders, 2u);
  EXPECT_GE(weak.min_holders, 1u);
  EXPECT_LE(weak.max_holders, 2u);
}

}  // namespace
}  // namespace ssr::msgpass
