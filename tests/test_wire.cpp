// Tests for the wire codec: varints, CRC-32, framing, per-protocol state
// payloads, and the corruption -> rejection path. Includes randomized
// round-trip and garbage-robustness properties.
#include "wire/codec.hpp"

#include <gtest/gtest.h>

namespace ssr::wire {
namespace {

TEST(Varint, RoundTripsRepresentativeValues) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{300}, std::uint64_t{16383},
        std::uint64_t{16384}, std::uint64_t{0xFFFFFFFF}, UINT64_MAX}) {
    Bytes buf;
    put_varint(buf, v);
    std::size_t offset = 0;
    const auto back = get_varint(buf, offset);
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(Varint, EncodingLengths) {
  Bytes buf;
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  put_varint(buf, UINT64_MAX);
  EXPECT_EQ(buf.size(), 10u);
}

TEST(Varint, TruncationDetected) {
  Bytes buf;
  put_varint(buf, 300);
  buf.pop_back();  // cut the terminating byte
  std::size_t offset = 0;
  EXPECT_EQ(get_varint(buf, offset), std::nullopt);
}

TEST(Varint, OverlongEncodingRejected) {
  // Eleven continuation bytes can never be a valid varint here.
  Bytes buf(11, 0x80);
  std::size_t offset = 0;
  EXPECT_EQ(get_varint(buf, offset), std::nullopt);
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::string s = "123456789";
  const Bytes data(s.begin(), s.end());
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(Bytes{}), 0u);
}

TEST(Frame, RoundTrip) {
  const Bytes payload{1, 2, 3, 4, 5};
  const Bytes framed = encode_frame(42, payload);
  DecodeError error{};
  const auto frame = decode_frame(framed, &error);
  ASSERT_TRUE(frame.has_value()) << to_string(error);
  EXPECT_EQ(frame->sender, 42u);
  EXPECT_EQ(frame->payload, payload);
}

TEST(Frame, EmptyPayloadAllowed) {
  const Bytes framed = encode_frame(7, Bytes{});
  const auto frame = decode_frame(framed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(Frame, RejectsBadMagic) {
  Bytes framed = encode_frame(1, Bytes{9});
  framed[0] = 0x00;
  DecodeError error{};
  EXPECT_EQ(decode_frame(framed, &error), std::nullopt);
  EXPECT_EQ(error, DecodeError::kBadMagic);
}

TEST(Frame, RejectsBadVersion) {
  Bytes framed = encode_frame(1, Bytes{9});
  framed[1] = 99;
  DecodeError error{};
  EXPECT_EQ(decode_frame(framed, &error), std::nullopt);
  EXPECT_EQ(error, DecodeError::kBadVersion);
}

TEST(Frame, RejectsTruncation) {
  Bytes framed = encode_frame(1, Bytes{9, 9, 9});
  framed.resize(framed.size() - 2);
  DecodeError error{};
  EXPECT_EQ(decode_frame(framed, &error), std::nullopt);
  EXPECT_NE(error, DecodeError::kNone);
}

TEST(Frame, RejectsPayloadBitFlip) {
  Bytes framed = encode_frame(1, Bytes{0xAA, 0xBB});
  // Flip a payload bit; the CRC must catch it.
  framed[framed.size() - 5] ^= 0x01;
  DecodeError error{};
  EXPECT_EQ(decode_frame(framed, &error), std::nullopt);
  EXPECT_EQ(error, DecodeError::kBadChecksum);
}

TEST(Frame, CorruptBitsAlwaysDetectedOrHarmless) {
  // Property: a frame with any small number of flipped bits either fails
  // to decode, or (vanishingly unlikely with CRC-32, impossible for 1-2
  // flips) decodes to the original content. It must never decode to
  // *different* content.
  Rng rng(77);
  const core::SsrState state{5, true, false};
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes framed = encode_state_frame(3, state);
    corrupt_bits(framed, rng, 1 + rng.below(3));
    const auto frame = decode_frame(framed);
    if (!frame.has_value()) continue;
    const auto decoded = decode_ssr_state(frame->payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, state);
    EXPECT_EQ(frame->sender, 3u);
  }
}

TEST(Frame, RandomGarbageNeverCrashes) {
  Rng rng(99);
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_NO_THROW({ (void)decode_frame(junk); });
  }
}

TEST(FrameV2, RoundTrip) {
  const Bytes payload{9, 8, 7};
  for (std::uint64_t ring : {std::uint64_t{0}, std::uint64_t{1},
                             std::uint64_t{127}, std::uint64_t{128},
                             std::uint64_t{100000}, std::uint64_t{1} << 40}) {
    for (std::uint64_t sender : {std::uint64_t{0}, std::uint64_t{5},
                                 std::uint64_t{300}}) {
      const Bytes framed = encode_frame_v2(ring, sender, payload);
      DecodeError error{};
      const auto frame = decode_frame_any(framed, &error);
      ASSERT_TRUE(frame.has_value()) << to_string(error);
      EXPECT_EQ(frame->version, kVersion2);
      EXPECT_EQ(frame->ring_id, ring);
      EXPECT_EQ(frame->sender, sender);
      EXPECT_EQ(frame->payload, payload);
    }
  }
}

TEST(FrameV2, DecodeAnyAcceptsV1) {
  // Backward compatibility: a frame from the single-ring runtimes decodes
  // through decode_frame_any with ring_id 0 and version 1.
  const Bytes payload{1, 2, 3};
  const Bytes framed = encode_frame(42, payload);
  const auto frame = decode_frame_any(framed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->version, kVersion);
  EXPECT_EQ(frame->ring_id, 0u);
  EXPECT_EQ(frame->sender, 42u);
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameV2, V1DecoderRejectsV2WithBadVersion) {
  // The legacy decoder must reject-and-name v2 frames so a mixed deployment
  // counts them instead of misparsing them.
  const Bytes framed = encode_frame_v2(7, 1, Bytes{9});
  DecodeError error{};
  EXPECT_EQ(decode_frame(framed, &error), std::nullopt);
  EXPECT_EQ(error, DecodeError::kBadVersion);
}

TEST(FrameV2, DecodeAnyRejectsUnknownVersion) {
  Bytes framed = encode_frame_v2(7, 1, Bytes{9});
  framed[1] = 3;
  DecodeError error{};
  EXPECT_EQ(decode_frame_any(framed, &error), std::nullopt);
  EXPECT_EQ(error, DecodeError::kBadVersion);
}

TEST(FrameV2, EveryTruncationRejected) {
  const Bytes framed = encode_frame_v2(100000, 2, Bytes{5, 6, 7, 8});
  for (std::size_t len = 0; len < framed.size(); ++len) {
    DecodeError error{};
    EXPECT_EQ(decode_frame_any(ByteView(framed.data(), len), &error),
              std::nullopt)
        << "prefix of length " << len << " decoded";
    EXPECT_NE(error, DecodeError::kNone);
  }
}

TEST(FrameV2, CorruptBitsDetectedOrHarmless) {
  // Same CRC property as v1: flipped bits either fail the decode or leave
  // the content untouched — never a *different* ring/sender/payload.
  Rng rng(123);
  const core::SsrState state{4, false, true};
  const Bytes payload = encode_state(state);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes framed = encode_frame_v2(991, 2, payload);
    corrupt_bits(framed, rng, 1 + rng.below(3));
    const auto frame = decode_frame_any(framed);
    if (!frame.has_value()) continue;
    EXPECT_EQ(frame->ring_id, 991u);
    EXPECT_EQ(frame->sender, 2u);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(FrameV2, RandomGarbageNeverCrashes) {
  Rng rng(7);
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_NO_THROW({ (void)decode_frame_any(junk); });
  }
}

TEST(FrameV2, ArenaAppendedFramesDecodeIndividually) {
  // The reactor packs a sendmmsg batch into one arena; each frame's bytes
  // must decode independently of its neighbors.
  Bytes arena;
  const std::size_t first_start = arena.size();
  encode_frame_v2_into(arena, 10, 1, Bytes{0xAA});
  const std::size_t second_start = arena.size();
  encode_frame_v2_into(arena, 20, 2, Bytes{0xBB, 0xCC});
  const std::size_t end = arena.size();
  const auto first = decode_frame_any(
      ByteView(arena.data() + first_start, second_start - first_start));
  const auto second = decode_frame_any(
      ByteView(arena.data() + second_start, end - second_start));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->ring_id, 10u);
  EXPECT_EQ(first->payload, (Bytes{0xAA}));
  EXPECT_EQ(second->ring_id, 20u);
  EXPECT_EQ(second->sender, 2u);
  EXPECT_EQ(second->payload, (Bytes{0xBB, 0xCC}));
}

TEST(StatePayload, SsrRoundTrip) {
  for (std::uint32_t x : {0u, 1u, 127u, 128u, 1000000u}) {
    for (int flags = 0; flags < 4; ++flags) {
      const core::SsrState s{x, (flags & 2) != 0, (flags & 1) != 0};
      const auto back = decode_ssr_state(encode_state(s));
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, s);
    }
  }
}

TEST(StatePayload, SsrRejectsBadFlags) {
  Bytes payload;
  put_varint(payload, 3);
  payload.push_back(7);  // flags > 3
  EXPECT_EQ(decode_ssr_state(payload), std::nullopt);
}

TEST(StatePayload, SsrRejectsTrailingBytes) {
  Bytes payload = encode_state(core::SsrState{1, false, true});
  payload.push_back(0);
  EXPECT_EQ(decode_ssr_state(payload), std::nullopt);
}

TEST(StatePayload, KStateRoundTrip) {
  for (std::uint32_t x : {0u, 5u, 4096u}) {
    const auto back = decode_kstate(encode_state(dijkstra::KStateLocal{x}));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->x, x);
  }
}

TEST(StatePayload, DualRoundTrip) {
  const dijkstra::DualLocal s{3, 900};
  const auto back = decode_dual(encode_state(s));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

TEST(StatePayload, DualRejectsTruncation) {
  Bytes payload;
  put_varint(payload, 3);  // only one of the two counters
  EXPECT_EQ(decode_dual(payload), std::nullopt);
}

TEST(CorruptBits, RequiresNonEmptyFrame) {
  Bytes empty;
  Rng rng(1);
  EXPECT_THROW(corrupt_bits(empty, rng), std::invalid_argument);
}

TEST(DecodeErrorNames, AllDistinct) {
  EXPECT_EQ(to_string(DecodeError::kNone), "none");
  EXPECT_EQ(to_string(DecodeError::kTruncated), "truncated");
  EXPECT_EQ(to_string(DecodeError::kBadMagic), "bad-magic");
  EXPECT_EQ(to_string(DecodeError::kBadVersion), "bad-version");
  EXPECT_EQ(to_string(DecodeError::kBadLength), "bad-length");
  EXPECT_EQ(to_string(DecodeError::kBadChecksum), "bad-checksum");
}

}  // namespace
}  // namespace ssr::wire
