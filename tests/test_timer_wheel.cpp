// Timer-wheel unit tests: cascade correctness across level boundaries,
// coarse-slot ordering, O(1) lazy cancellation, and deterministic firing
// order under a fixed virtual clock. The multi-ring reactor's telemetry
// determinism rests on the last property, so it is tested both directly
// and as a randomized differential against a reference priority queue.
#include "runtime/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.hpp"

namespace {

using ssr::Rng;
using ssr::runtime::TimerId;
using ssr::runtime::TimerWheel;

std::vector<std::uint64_t> advance(TimerWheel& wheel, std::uint64_t tick) {
  std::vector<std::uint64_t> fired;
  wheel.advance_to(tick, fired);
  return fired;
}

TEST(TimerWheel, FiresAtExactDeadline) {
  TimerWheel wheel;
  wheel.schedule_at(10, 111);
  EXPECT_TRUE(advance(wheel, 9).empty());
  const auto fired = advance(wheel, 10);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 111u);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, NeverFiresEarly) {
  TimerWheel wheel;
  // One timer in each level's range.
  wheel.schedule_in(3, 0);          // level 0
  wheel.schedule_in(700, 1);        // level 1
  wheel.schedule_in(70'000, 2);     // level 2
  wheel.schedule_in(17'000'000, 3); // level 3
  std::vector<std::uint64_t> fired;
  wheel.advance_to(2, fired);
  EXPECT_TRUE(fired.empty());
  wheel.advance_to(699, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{0}));
  fired.clear();
  wheel.advance_to(69'999, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));
  fired.clear();
  wheel.advance_to(16'999'999, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2}));
  fired.clear();
  wheel.advance_to(17'000'000, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, CascadePreservesDeadlineAcrossLevelBoundary) {
  // Deadlines straddling the level-0 horizon (256) must each fire at their
  // own tick, even though they start on a coarse level-1 slot.
  TimerWheel wheel;
  std::map<std::uint64_t, std::uint64_t> want;  // deadline -> cookie
  for (std::uint64_t d = 250; d < 262; ++d) {
    wheel.schedule_at(d, d);
    want[d] = d;
  }
  for (std::uint64_t t = 0; t < 300; ++t) {
    const auto fired = advance(wheel, t);
    if (want.count(t) != 0) {
      ASSERT_EQ(fired.size(), 1u) << "tick " << t;
      EXPECT_EQ(fired[0], t);
    } else {
      EXPECT_TRUE(fired.empty()) << "tick " << t;
    }
  }
}

TEST(TimerWheel, CoarseSlotHoldsManyDeadlinesInOrder) {
  // Deadlines 1000..1003 share level-1 slot 3 but must fire on distinct
  // ticks in deadline order after the cascade at tick 768.
  TimerWheel wheel;
  wheel.schedule_at(1003, 3);
  wheel.schedule_at(1000, 0);
  wheel.schedule_at(1002, 2);
  wheel.schedule_at(1001, 1);
  std::vector<std::uint64_t> all;
  for (std::uint64_t t = 0; t <= 1003; ++t) {
    const auto fired = advance(wheel, t);
    for (auto c : fired) {
      EXPECT_EQ(c, t - 1000) << "cookie fired on wrong tick";
      all.push_back(c);
    }
  }
  EXPECT_EQ(all, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(TimerWheel, SameTickFiresInScheduleOrder) {
  TimerWheel wheel;
  for (std::uint64_t i = 0; i < 50; ++i) wheel.schedule_at(5, i);
  const auto fired = advance(wheel, 5);
  ASSERT_EQ(fired.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(fired[i], i);
}

TEST(TimerWheel, SameTickOrderSurvivesCascade) {
  // Schedule order must be preserved even when the shared deadline sits
  // beyond the level-0 horizon and the entries cascade down together.
  TimerWheel wheel;
  for (std::uint64_t i = 0; i < 20; ++i) wheel.schedule_at(5000, i);
  std::vector<std::uint64_t> fired;
  wheel.advance_to(5000, fired);
  ASSERT_EQ(fired.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(fired[i], i);
}

TEST(TimerWheel, CancelledTimerNeverFires) {
  TimerWheel wheel;
  const TimerId keep = wheel.schedule_at(100, 1);
  const TimerId drop = wheel.schedule_at(100, 2);
  (void)keep;
  EXPECT_TRUE(wheel.cancel(drop));
  EXPECT_FALSE(wheel.cancel(drop)) << "double cancel must report false";
  EXPECT_EQ(wheel.size(), 1u);
  const auto fired = advance(wheel, 200);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));
}

TEST(TimerWheel, CancelCoarseTimerBeforeCascade) {
  TimerWheel wheel;
  const TimerId id = wheel.schedule_at(100'000, 7);  // level 2
  EXPECT_TRUE(wheel.cancel(id));
  const auto fired = advance(wheel, 200'000);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, CancelAfterFireIsFalse) {
  TimerWheel wheel;
  const TimerId id = wheel.schedule_at(3, 9);
  EXPECT_EQ(advance(wheel, 3).size(), 1u);
  EXPECT_FALSE(wheel.cancel(id));
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel;
  std::vector<std::uint64_t> fired;
  wheel.advance_to(50, fired);
  wheel.schedule_at(10, 4);  // already past; clamps to now
  wheel.advance_to(50, fired);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{4}));
}

TEST(TimerWheel, NextDeadlineTracksEarliestLive) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.next_deadline(),
            std::numeric_limits<std::uint64_t>::max());
  const TimerId a = wheel.schedule_at(40, 1);
  wheel.schedule_at(900, 2);
  EXPECT_EQ(wheel.next_deadline(), 40u);
  wheel.cancel(a);
  EXPECT_EQ(wheel.next_deadline(), 900u);
}

TEST(TimerWheel, RescheduleLoopLikeRefreshTimer) {
  // The reactor's refresh timers re-arm themselves from the fire callback;
  // simulate 1000 periods and check perfect periodicity.
  TimerWheel wheel;
  const std::uint64_t period = 37;
  wheel.schedule_at(period, 0);
  std::uint64_t fires = 0;
  std::vector<std::uint64_t> fired;
  for (std::uint64_t t = 0; t <= period * 1000; ++t) {
    fired.clear();
    wheel.advance_to(t, fired);
    for (auto cookie : fired) {
      (void)cookie;
      ++fires;
      EXPECT_EQ(t % period, 0u) << "refresh fired off-period at " << t;
      wheel.schedule_at(t + period, 0);
    }
  }
  EXPECT_EQ(fires, 1000u);
}

TEST(TimerWheel, DifferentialAgainstReferenceQueue) {
  // Randomized differential vs a (deadline, seq)-ordered reference under a
  // fixed seed: identical fire sequence, including cancellations and
  // re-schedules, across all four levels.
  Rng rng(20260809);
  TimerWheel wheel;
  struct Ref {
    std::uint64_t deadline;
    std::uint64_t seq;
    std::uint64_t cookie;
    TimerId id;
    bool cancelled = false;
  };
  std::vector<Ref> reference;
  std::uint64_t seq = 0;
  std::uint64_t now = 0;
  std::vector<std::uint64_t> got;
  for (int step = 0; step < 4000; ++step) {
    const auto action = rng.below(10);
    if (action < 6) {
      // Schedule with a delay spanning all wheel levels.
      std::uint64_t delay = 0;
      switch (rng.below(4)) {
        case 0: delay = rng.below(200); break;
        case 1: delay = 200 + rng.below(60'000); break;
        case 2: delay = 60'000 + rng.below(1'000'000); break;
        default: delay = 16'000'000 + rng.below(20'000'000); break;
      }
      const std::uint64_t cookie = seq;
      const TimerId id = wheel.schedule_in(delay, cookie);
      reference.push_back({now + delay, seq, cookie, id});
      ++seq;
    } else if (action < 8 && !reference.empty()) {
      auto& victim = reference[rng.below(reference.size())];
      const bool wheel_says = wheel.cancel(victim.id);
      const bool ref_says = !victim.cancelled && victim.deadline > now;
      // A timer that already fired or was cancelled reports false.
      EXPECT_EQ(wheel_says, ref_says) << "cancel disagreement";
      victim.cancelled = victim.cancelled || wheel_says;
    } else {
      now += rng.below(5000);
      got.clear();
      wheel.advance_to(now, got);
      // Reference: all live entries with deadline <= now, ordered by
      // (deadline, schedule seq).
      std::vector<Ref*> due;
      for (auto& r : reference) {
        if (!r.cancelled && r.deadline <= now) due.push_back(&r);
      }
      std::sort(due.begin(), due.end(), [](const Ref* a, const Ref* b) {
        if (a->deadline != b->deadline) return a->deadline < b->deadline;
        return a->seq < b->seq;
      });
      ASSERT_EQ(got.size(), due.size()) << "at now=" << now;
      for (std::size_t i = 0; i < due.size(); ++i) {
        EXPECT_EQ(got[i], due[i]->cookie) << "fire order differs at " << i;
        due[i]->cancelled = true;  // consumed
      }
    }
  }
  // Everything still live must agree too.
  std::size_t ref_live = 0;
  for (const auto& r : reference) {
    if (!r.cancelled) ++ref_live;
  }
  EXPECT_EQ(wheel.size(), ref_live);
}

TEST(TimerWheel, DeterministicAcrossRuns) {
  // Two wheels fed the same schedule produce byte-identical fire streams.
  auto run = [] {
    Rng rng(77);
    TimerWheel wheel;
    std::vector<std::uint64_t> stream;
    std::uint64_t now = 0;
    for (int i = 0; i < 500; ++i) {
      wheel.schedule_in(rng.below(100'000), i);
      if (i % 3 == 0) {
        now += rng.below(40'000);
        wheel.advance_to(now, stream);
      }
    }
    wheel.advance_to(now + 200'000, stream);
    return stream;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
