// Tests for self-stabilizing leader election on id-based rings, including
// the exhaustive verification and the layered composition with SSRmin
// (leader election discharges the "distinguished bottom process"
// assumption).
#include "elect/leader.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "graph/check.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"

namespace ssr::elect {
namespace {

TEST(Leader, ConstructionConstraints) {
  EXPECT_THROW(MinIdLeader({1, 2}), std::invalid_argument);      // n >= 3
  EXPECT_THROW(MinIdLeader({1, 2, 1}), std::invalid_argument);   // unique ids
  const MinIdLeader ring({5, 2, 9, 4});
  EXPECT_EQ(ring.min_id(), 2u);
  EXPECT_EQ(ring.max_id(), 9u);
  EXPECT_EQ(ring.leader_position(), 1u);
}

TEST(Leader, DesiredFunction) {
  const MinIdLeader ring({3, 1, 0, 2});  // n = 4, min at position 2
  // A strictly smaller proposal within range is adopted with dist + 1.
  EXPECT_EQ(ring.desired(0, LeaderState{0, 1}), (LeaderState{0, 2}));
  // Equal or larger proposals fall back to own candidacy.
  EXPECT_EQ(ring.desired(0, LeaderState{3, 0}), (LeaderState{3, 0}));
  EXPECT_EQ(ring.desired(0, LeaderState{7, 0}), (LeaderState{3, 0}));
  // Saturated distance kills the proposal (ghost starvation).
  EXPECT_EQ(ring.desired(0, LeaderState{0, 3}), (LeaderState{3, 0}));
}

TEST(Leader, LegitimateConfigIsSilent) {
  const MinIdLeader ring({3, 1, 0, 2});
  const LeaderConfig config = legitimate_config(ring);
  EXPECT_TRUE(is_legitimate(ring, config));
  graph::GraphEngine<MinIdLeader> engine(ring, config);
  EXPECT_TRUE(engine.enabled_indices().empty());
  // The leader believes in itself; everyone else does not.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.believes_leader(i, config[i]), i == 2);
  }
}

class LeaderExhaustive
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(LeaderExhaustive, FixpointIsExactlyTheTrueLeader) {
  auto checker = make_leader_checker(GetParam());
  const graph::GraphCheckReport report = checker.run();
  EXPECT_TRUE(report.fixpoints_sound) << report.summary();
  EXPECT_TRUE(report.fixpoints_complete) << report.summary();
  EXPECT_TRUE(report.convergence_holds) << report.summary();
  EXPECT_EQ(report.silent_configs, 1u);  // the one true leader config
  EXPECT_EQ(report.legitimate_configs, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    IdAssignments, LeaderExhaustive,
    ::testing::Values(std::vector<std::uint32_t>{0, 1, 2, 3},
                      std::vector<std::uint32_t>{3, 2, 1, 0},
                      std::vector<std::uint32_t>{1, 3, 0, 2},
                      std::vector<std::uint32_t>{2, 0, 3, 1}),
    [](const ::testing::TestParamInfo<std::vector<std::uint32_t>>& pi) {
      std::string name = "ids";
      for (auto id : pi.param) name += std::to_string(id);
      return name;
    });

TEST(Leader, RandomizedConvergenceLargerRings) {
  Rng rng(41);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::uint32_t> ids(12);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ids[i] = static_cast<std::uint32_t>(i) * 3 + 1;  // unique, sparse
    }
    rng.shuffle(ids);
    const MinIdLeader ring(ids);
    graph::GraphEngine<MinIdLeader> engine(ring, random_config(ring, rng));
    stab::RandomSubsetDaemon daemon{rng.split(), 0.5};
    const auto steps = graph::run_to_silence(engine, daemon, 200000);
    ASSERT_TRUE(steps.has_value()) << "trial " << trial;
    EXPECT_TRUE(is_legitimate(ring, engine.config()));
  }
}

TEST(Leader, GhostLeaderStarves) {
  // Plant a ghost id smaller than every real id; it must die.
  const MinIdLeader ring({10, 11, 12, 13, 14});
  LeaderConfig config = legitimate_config(ring);
  config[3] = LeaderState{2, 0};  // ghost: no node has id 2
  graph::GraphEngine<MinIdLeader> engine(ring, config);
  stab::CentralRandomDaemon daemon{Rng(5)};
  const auto steps = graph::run_to_silence(engine, daemon, 10000);
  ASSERT_TRUE(steps.has_value());
  EXPECT_TRUE(is_legitimate(ring, engine.config()));
  for (const auto& s : engine.config()) EXPECT_EQ(s.lid, 10u);
}

TEST(Leader, ComposesWithSsrMin) {
  // Layered composition: elect the leader, relabel the ring so the leader
  // is logical position 0, run SSRmin on the logical ring. Both layers
  // self-stabilize; together they discharge SSRmin's distinguished-
  // process assumption on an id-only ring.
  Rng rng(77);
  std::vector<std::uint32_t> ids{42, 7, 19, 88, 3, 55};
  const std::size_t n = ids.size();
  const MinIdLeader election(ids);

  // Layer 1: leader election from an arbitrary configuration.
  graph::GraphEngine<MinIdLeader> elect_engine(election,
                                               random_config(election, rng));
  stab::RandomSubsetDaemon daemon{rng.split(), 0.5};
  ASSERT_TRUE(graph::run_to_silence(elect_engine, daemon, 100000).has_value());
  // Every node can now locally derive its logical index: its distance
  // from the leader.
  std::vector<std::size_t> logical(n);
  for (std::size_t i = 0; i < n; ++i) {
    logical[i] = elect_engine.config()[i].dist;
  }
  // The logical indices are a rotation: 0..n-1 starting at the leader.
  EXPECT_EQ(logical[election.leader_position()], 0u);
  std::vector<bool> seen(n, false);
  for (std::size_t l : logical) {
    ASSERT_LT(l, n);
    seen[l] = true;
  }
  for (bool b : seen) EXPECT_TRUE(b);

  // Layer 2: SSRmin on the logical ring (physical node i acts as logical
  // process logical[i]; the leader is the bottom).
  const core::SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
  Rng rng2(99);
  stab::Engine<core::SsrMinRing> ssr_engine(ring,
                                            core::random_config(ring, rng2));
  auto legit = [&ring](const core::SsrConfig& c) {
    return core::is_legitimate(ring, c);
  };
  stab::CentralRandomDaemon daemon2{rng2.split()};
  const auto result = stab::run_until(ssr_engine, daemon2, legit, 100000);
  EXPECT_TRUE(result.reached);
}

TEST(Leader, ApplyRejectsDisabled) {
  const MinIdLeader ring({0, 1, 2});
  const LeaderConfig config = legitimate_config(ring);
  std::vector<LeaderState> neigh{config[2], config[1]};  // neighbors of 0
  EXPECT_THROW(ring.apply(0, MinIdLeader::kRuleCorrect, config[0], neigh),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssr::elect
