// Unit tests for the statistics substrate.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace ssr {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SingleSampleVarianceZero) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(4);
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100.0 - 50.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a;
  OnlineStats b;
  b.add(1.0);
  b.add(2.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  OnlineStats c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(SampleSet, PercentilesExact) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);  // interpolated
}

TEST(SampleSet, PercentileAfterLateInsertResorts) {
  SampleSet s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(SampleSet, SingleElement) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50), std::invalid_argument);
  EXPECT_THROW(s.min(), std::invalid_argument);
  EXPECT_THROW(s.max(), std::invalid_argument);
}

TEST(SampleSet, OutOfRangePercentileThrows) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(SampleSet, MeanStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Histogram, BucketsAndBoundaries) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(10.0);  // overflow (half-open range)
  h.add(-0.1);  // underflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderShowsNonEmptyBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(2.5);
  h.add(2.6);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("#"), std::string::npos);
  EXPECT_NE(out.find("[0, 1)"), std::string::npos);
  EXPECT_NE(out.find("[2, 3)"), std::string::npos);
  // Empty bucket rows are suppressed.
  EXPECT_EQ(out.find("[1, 2)"), std::string::npos);
}

}  // namespace
}  // namespace ssr
