// Cross-cutting edge cases: modulus wraparound marathons, simultaneous
// adjacent moves, trace formatting under multi-selection, extreme K,
// statistics cross-checks, and PRNG stream stability.
#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "msgpass/factories.hpp"
#include "msgpass/timeline.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "stabilizing/trace.hpp"
#include "util/stats.hpp"

namespace ssr {
namespace {

TEST(EdgeCases, ModulusWraparoundMarathon) {
  // Several full K-cycles: x wraps mod K repeatedly; legitimacy must hold
  // at every one of the 3nK * cycles steps.
  const std::size_t n = 4;
  const std::uint32_t K = 5;
  const core::SsrMinRing ring(n, K);
  stab::Engine<core::SsrMinRing> engine(ring,
                                        core::canonical_legitimate(ring, 4));
  stab::SynchronousDaemon daemon;
  for (int t = 0; t < 3 * 4 * 5 * 4; ++t) {  // four full x-cycles
    ASSERT_TRUE(core::is_legitimate(ring, engine.config())) << "step " << t;
    ASSERT_TRUE(engine.step_with(daemon));
  }
  EXPECT_EQ(engine.config(), core::canonical_legitimate(ring, 4));
}

TEST(EdgeCases, MinimalRingMinimalModulus) {
  // The smallest legal instance: n = 3, K = 4.
  const core::SsrMinRing ring(3, 4);
  Rng rng(1);
  stab::Engine<core::SsrMinRing> engine(ring, core::random_config(ring, rng));
  stab::SynchronousDaemon daemon;
  auto legit = [&ring](const core::SsrConfig& c) {
    return core::is_legitimate(ring, c);
  };
  EXPECT_TRUE(stab::run_until(engine, daemon, legit, 2000).reached);
}

TEST(EdgeCases, HugeModulus) {
  // K far above n must work identically (Theorem 1 only asks K > n).
  const core::SsrMinRing ring(3, 1000);
  EXPECT_EQ(ring.states_per_process(), 4000u);
  Rng rng(2);
  stab::Engine<core::SsrMinRing> engine(ring, core::random_config(ring, rng));
  stab::CentralRandomDaemon daemon{Rng(3)};
  auto legit = [&ring](const core::SsrConfig& c) {
    return core::is_legitimate(ring, c);
  };
  EXPECT_TRUE(stab::run_until(engine, daemon, legit, 5000).reached);
}

TEST(EdgeCases, AdjacentSimultaneousMovesUseSnapshot) {
  // During convergence two ADJACENT processes can be enabled; a
  // synchronous step must evaluate both against the pre-step snapshot.
  const core::SsrMinRing ring(4, 5);
  // P1: G true (1 != 0), flags 00 -> Rule 1. P2: !G (1 == 1), pred P1 =
  // <0.0>? Rule needs pred 1.0 for Rule 3; craft: P1 <1.0>, P2 <1.0>.
  core::SsrConfig config(4);
  config[1] = core::SsrState{1, true, false};   // G true, self 10
  config[2] = core::SsrState{1, true, false};   // G false (1==1), self 10
  // P1: G, self 10, succ(P2) 10 -> Rule 4. P2: !G, pred 10, self 10 ->
  // Rule 3.
  stab::Engine<core::SsrMinRing> engine(ring, config);
  ASSERT_EQ(engine.enabled_rule(1), core::SsrMinRing::kRuleFixGuardTrue);
  ASSERT_EQ(engine.enabled_rule(2), core::SsrMinRing::kRuleReceiveSecondary);
  const std::vector<std::size_t> both{1, 2};
  engine.step(both);
  // P1 applied Rule 4 against the OLD P0/P2: x1 <- x0 = 0, flags 00.
  EXPECT_EQ(engine.config()[1], (core::SsrState{0, false, false}));
  // P2 applied Rule 3 against the OLD P1 = <1.0>: flags <0.1>, x kept.
  EXPECT_EQ(engine.config()[2], (core::SsrState{1, false, true}));
}

TEST(EdgeCases, TraceFormatMarksAllSelectedProcesses) {
  const core::SsrMinRing ring(4, 5);
  core::SsrConfig config(4);
  config[1] = core::SsrState{1, true, false};
  config[2] = core::SsrState{1, true, false};
  stab::Engine<core::SsrMinRing> engine(ring, config);
  stab::SynchronousDaemon daemon;
  stab::TraceRecorder<core::SsrMinRing> rec;
  rec.run(engine, daemon, 1);
  const std::string out =
      stab::format_trace<core::SsrMinRing>(rec.entries(), core::trace_style(ring));
  // Both selected processes carry their rule annotations in the same row.
  EXPECT_NE(out.find("/4"), std::string::npos);
  EXPECT_NE(out.find("/3"), std::string::npos);
}

TEST(EdgeCases, DualTimelineRenders) {
  dijkstra::DualKStateRing ring(4, 5);
  dijkstra::DualConfig init(4);
  init[0].b = 1;
  msgpass::NetworkParams net;
  net.seed = 3;
  auto sim = msgpass::make_dual_cst(ring, init, net);
  msgpass::TimelineRecorder rec(4, 1.0);
  rec.attach(sim);
  sim.run(60.0);
  const std::string out = rec.render(40);
  EXPECT_NE(out.find("v0"), std::string::npos);
  EXPECT_NE(out.find("any |"), std::string::npos);
}

TEST(EdgeCases, OnlineStatsAgreesWithSampleSet) {
  Rng rng(12);
  OnlineStats online;
  SampleSet batch;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(2.0) - rng.uniform01();
    online.add(x);
    batch.add(x);
  }
  EXPECT_NEAR(online.mean(), batch.mean(), 1e-9);
  EXPECT_NEAR(online.stddev(), batch.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(online.min(), batch.min());
  EXPECT_DOUBLE_EQ(online.max(), batch.max());
}

TEST(EdgeCases, RngStreamIsStable) {
  // Golden values pin the xoshiro256** stream: any change to seeding or
  // the generator silently invalidates every recorded experiment, so make
  // it loud instead.
  Rng rng(42);
  const std::uint64_t a = rng();
  const std::uint64_t b = rng();
  Rng again(42);
  EXPECT_EQ(again(), a);
  EXPECT_EQ(again(), b);
  // Distinct seeds diverge immediately.
  Rng other(43);
  EXPECT_NE(other(), a);
}

TEST(EdgeCases, CstTinyRing) {
  // n = 3 through the full message-passing stack.
  core::SsrMinRing ring(3, 4);
  msgpass::NetworkParams net;
  net.seed = 5;
  auto sim = msgpass::make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                                      net);
  const auto stats = sim.run(1000.0);
  EXPECT_EQ(stats.min_holders, 1u);
  EXPECT_LE(stats.max_holders, 2u);
  EXPECT_GT(stats.handovers, 10u);
}

TEST(EdgeCases, StarvingDaemonStillConverges) {
  // Unfairness against a fixed victim cannot block stabilization.
  const core::SsrMinRing ring(5, 6);
  Rng rng(9);
  for (std::size_t victim = 0; victim < 5; ++victim) {
    stab::Engine<core::SsrMinRing> engine(ring, core::random_config(ring, rng));
    stab::StarvingDaemon daemon{rng.split(), victim};
    auto legit = [&ring](const core::SsrConfig& c) {
      return core::is_legitimate(ring, c);
    };
    EXPECT_TRUE(stab::run_until(engine, daemon, legit, 20000).reached)
        << "victim " << victim;
  }
}

}  // namespace
}  // namespace ssr
