// Closure (Lemma 1) and the inchworm movement pattern (Figure 1):
// from every legitimate configuration exactly one process is enabled, the
// successor configuration is legitimate, and over a full revolution the
// primary/secondary tokens sweep the ring in the documented order.
#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"

namespace ssr::core {
namespace {

class Closure
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(Closure, EveryLegitimateConfigHasUniqueEnabledAndLegitSuccessor) {
  const auto [n, K] = GetParam();
  const SsrMinRing ring(n, K);
  for (const auto& config : enumerate_legitimate(ring)) {
    stab::Engine<SsrMinRing> engine(ring, config);
    const auto enabled = engine.enabled_indices();
    ASSERT_EQ(enabled.size(), 1u)
        << "legitimate configurations have exactly one enabled process";
    engine.step(enabled);
    EXPECT_TRUE(is_legitimate(ring, engine.config()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RingSizesAndModuli, Closure,
    ::testing::Values(std::make_pair(std::size_t{3}, std::uint32_t{4}),
                      std::make_pair(std::size_t{4}, std::uint32_t{5}),
                      std::make_pair(std::size_t{5}, std::uint32_t{6}),
                      std::make_pair(std::size_t{7}, std::uint32_t{8}),
                      std::make_pair(std::size_t{10}, std::uint32_t{11}),
                      // K well above the n+1 minimum.
                      std::make_pair(std::size_t{3}, std::uint32_t{9}),
                      std::make_pair(std::size_t{5}, std::uint32_t{16}),
                      std::make_pair(std::size_t{7}, std::uint32_t{29})));

TEST(Closure, FullCycleReturnsToStart) {
  // Lemma 1's part (b): gamma_0 is reachable from gamma_0. One revolution
  // takes 3n steps and increments x by one everywhere; after K revolutions
  // (3nK steps) the configuration is exactly gamma_0 again.
  const std::size_t n = 5;
  const std::uint32_t K = 6;
  const SsrMinRing ring(n, K);
  const SsrConfig start = canonical_legitimate(ring, 0);
  stab::Engine<SsrMinRing> engine(ring, start);
  stab::SynchronousDaemon daemon;  // only one process is ever enabled
  for (std::size_t t = 0; t < 3 * n * K; ++t) {
    ASSERT_TRUE(engine.step_with(daemon));
    ASSERT_TRUE(is_legitimate(ring, engine.config())) << "step " << t;
  }
  EXPECT_EQ(engine.config(), start);
}

TEST(Closure, RevolutionTakesThreeNSteps) {
  const std::size_t n = 7;
  const SsrMinRing ring(n, 8);
  stab::Engine<SsrMinRing> engine(ring, canonical_legitimate(ring, 2));
  stab::SynchronousDaemon daemon;
  for (std::size_t t = 0; t < 3 * n; ++t) {
    ASSERT_TRUE(engine.step_with(daemon));
  }
  // After one revolution every x is incremented and P0 holds both tokens.
  const auto info = classify_legitimate(ring, engine.config());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->primary_holder, 0u);
  EXPECT_EQ(info->shape, LegitimateShape::kHolderTra);
  for (const auto& s : engine.config()) EXPECT_EQ(s.x, 3u);
}

TEST(Closure, InchwormOrderOfShapes) {
  // Within one hop the shapes cycle kHolderTra -> kHolderRts ->
  // kHandoffPending -> (next holder) kHolderTra — the two-token inchworm of
  // Figure 1.
  const std::size_t n = 4;
  const SsrMinRing ring(n, 5);
  stab::Engine<SsrMinRing> engine(ring, canonical_legitimate(ring, 0));
  stab::SynchronousDaemon daemon;
  std::size_t expected_holder = 0;
  for (std::size_t hop = 0; hop < 2 * n; ++hop) {
    auto info = classify_legitimate(ring, engine.config());
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->primary_holder, expected_holder);
    EXPECT_EQ(info->shape, LegitimateShape::kHolderTra);

    ASSERT_TRUE(engine.step_with(daemon));
    info = classify_legitimate(ring, engine.config());
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->primary_holder, expected_holder);
    EXPECT_EQ(info->shape, LegitimateShape::kHolderRts);

    ASSERT_TRUE(engine.step_with(daemon));
    info = classify_legitimate(ring, engine.config());
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->primary_holder, expected_holder);
    EXPECT_EQ(info->shape, LegitimateShape::kHandoffPending);

    ASSERT_TRUE(engine.step_with(daemon));
    expected_holder = stab::succ_index(expected_holder, n);
  }
}

TEST(Closure, EveryProcessEventuallyPrivileged) {
  // No starvation in legitimate executions: each process holds a token at
  // some point of a revolution.
  const std::size_t n = 6;
  const SsrMinRing ring(n, 7);
  stab::Engine<SsrMinRing> engine(ring, canonical_legitimate(ring, 1));
  stab::SynchronousDaemon daemon;
  std::vector<bool> was_privileged(n, false);
  for (std::size_t t = 0; t < 3 * n + 1; ++t) {
    const auto holdings = token_holdings(ring, engine.config());
    for (std::size_t i = 0; i < n; ++i) {
      if (holdings[i].primary || holdings[i].secondary)
        was_privileged[i] = true;
    }
    if (t < 3 * n) {
      ASSERT_TRUE(engine.step_with(daemon));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(was_privileged[i]) << "process " << i << " starved";
  }
}

TEST(Closure, PrivilegedCountAlwaysOneOrTwoAlongExecution) {
  const std::size_t n = 9;
  const SsrMinRing ring(n, 11);
  stab::Engine<SsrMinRing> engine(ring, canonical_legitimate(ring, 5));
  stab::CentralRandomDaemon daemon{Rng(3)};
  for (int t = 0; t < 500; ++t) {
    const std::size_t priv = privileged_count(ring, engine.config());
    ASSERT_GE(priv, 1u);
    ASSERT_LE(priv, 2u);
    ASSERT_TRUE(engine.step_with(daemon));
  }
}

}  // namespace
}  // namespace ssr::core
