// Tests for Dijkstra's K-state token ring (paper Algorithm 1 / §2.3):
// guards, commands, token counting, legitimacy, and self-stabilization
// under every daemon family.
#include "dijkstra/kstate.hpp"

#include <gtest/gtest.h>

#include <set>

#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"

namespace ssr::dijkstra {
namespace {

KStateConfig make_config(std::initializer_list<std::uint32_t> xs) {
  KStateConfig c;
  for (auto x : xs) c.push_back(KStateLocal{x});
  return c;
}

TEST(KStateGuard, BottomIsEqualityOthersInequality) {
  EXPECT_TRUE(kstate_guard(0, 3, 3));
  EXPECT_FALSE(kstate_guard(0, 3, 4));
  EXPECT_TRUE(kstate_guard(1, 3, 4));
  EXPECT_FALSE(kstate_guard(1, 3, 3));
  EXPECT_TRUE(kstate_guard(7, 0, 1));
}

TEST(KStateCommand, BottomIncrementsOthersCopy) {
  EXPECT_EQ(kstate_command(0, 3, 5), 4u);
  EXPECT_EQ(kstate_command(0, 4, 5), 0u);  // wraps mod K
  EXPECT_EQ(kstate_command(3, 2, 5), 2u);
}

TEST(KStateRing, RequiresKAtLeastN) {
  // Dijkstra's proof assumes K > n, but Hoepman showed the K = n boundary
  // still stabilizes on a ring, so the constructor admits it (and the
  // exhaustive checker verifies it for small n).
  EXPECT_THROW(KStateRing(5, 4), std::invalid_argument);
  EXPECT_NO_THROW(KStateRing(5, 5));
  EXPECT_NO_THROW(KStateRing(5, 6));
}

TEST(KStateRing, RequiresAtLeastTwoProcesses) {
  EXPECT_THROW(KStateRing(1, 5), std::invalid_argument);
}

TEST(KStateRing, ApplyRejectsDisabledRule) {
  KStateRing ring(3, 4);
  const KStateLocal self{1};
  const KStateLocal pred{2};
  const KStateLocal succ{0};
  // P0 with self != pred is disabled.
  EXPECT_THROW(ring.apply(0, KStateRing::kRule, self, pred, succ),
               std::invalid_argument);
}

TEST(TokenCount, AtLeastOneTokenInEveryConfiguration) {
  // Paper Lemma 3 rests on this classical property; check exhaustively for
  // n = 3, K = 4 (64 configurations).
  KStateRing ring(3, 4);
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      for (std::uint32_t c = 0; c < 4; ++c) {
        const KStateConfig config = make_config({a, b, c});
        EXPECT_GE(token_count(ring, config), 1u)
            << a << "," << b << "," << c;
      }
    }
  }
}

TEST(TokenCount, AllEqualHasExactlyOneTokenAtBottom) {
  KStateRing ring(5, 6);
  const KStateConfig config = make_config({2, 2, 2, 2, 2});
  EXPECT_EQ(token_count(ring, config), 1u);
  EXPECT_TRUE(ring.holds_token(0, config[0], config[4]));
}

TEST(Legitimacy, AcceptsAllEnumeratedForms) {
  for (std::size_t n : {3u, 4u, 5u, 7u}) {
    const KStateRing ring(n, static_cast<std::uint32_t>(n + 1));
    const auto all = enumerate_legitimate(ring);
    EXPECT_EQ(all.size(), n * (n + 1));
    std::set<KStateConfig> unique(all.begin(), all.end());
    EXPECT_EQ(unique.size(), all.size()) << "enumeration has duplicates";
    for (const auto& c : all) {
      EXPECT_TRUE(is_legitimate(ring, c));
      EXPECT_EQ(token_count(ring, c), 1u);
    }
  }
}

TEST(Legitimacy, RejectsStepOfHeightTwo) {
  KStateRing ring(3, 5);
  // One token (at P1) but the descent is 2, not 1: not of Definition form.
  const KStateConfig config = make_config({4, 2, 2});
  EXPECT_EQ(token_count(ring, config), 1u);
  EXPECT_FALSE(is_legitimate(ring, config));
}

TEST(Legitimacy, RejectsMultiTokenConfigs) {
  KStateRing ring(4, 5);
  EXPECT_FALSE(is_legitimate(ring, make_config({0, 1, 2, 3})));
  EXPECT_FALSE(is_legitimate(ring, make_config({1, 0, 1, 0})));
}

TEST(Legitimacy, WrapAroundModulus) {
  KStateRing ring(3, 4);
  // x = 3, x+1 = 0: (0, 3, 3) is the legitimate form with the token at P1.
  EXPECT_TRUE(is_legitimate(ring, make_config({0, 3, 3})));
}

TEST(ConvergenceBound, Formula) {
  EXPECT_EQ(convergence_step_bound(2), 3u);
  EXPECT_EQ(convergence_step_bound(5), 30u);
  EXPECT_EQ(convergence_step_bound(10), 135u);
}

struct ConvergenceCase {
  std::size_t n;
  std::string daemon;
  std::uint64_t seed;
};

class KStateConvergence : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(KStateConvergence, ReachesLegitimacyWithinBound) {
  const auto& param = GetParam();
  const auto K = static_cast<std::uint32_t>(param.n + 1);
  KStateRing ring(param.n, K);
  Rng rng(param.seed);
  stab::Engine<KStateRing> engine(ring, random_config(ring, rng));
  auto daemon = stab::make_daemon(param.daemon, Rng(param.seed * 7919 + 1));
  auto legit = [&ring](const KStateConfig& c) {
    return is_legitimate(ring, c);
  };
  // The 3n(n-1)/2 bound applies to *moves* of the Dijkstra machine; add the
  // extra circulation legitimacy-strictness costs and a safety factor.
  const std::uint64_t budget = 4 * convergence_step_bound(param.n) + 8 * param.n;
  const auto result = stab::run_until(engine, *daemon, legit, budget);
  EXPECT_TRUE(result.reached)
      << "n=" << param.n << " daemon=" << param.daemon
      << " seed=" << param.seed << " steps=" << result.steps;
  // Closure: stays legitimate for another full circulation.
  for (std::size_t t = 0; t < 3 * param.n; ++t) {
    ASSERT_TRUE(engine.step_with(*daemon));
    ASSERT_TRUE(is_legitimate(ring, engine.config()));
  }
}

std::vector<ConvergenceCase> convergence_cases() {
  std::vector<ConvergenceCase> cases;
  for (std::size_t n : {3u, 5u, 8u, 13u}) {
    for (const auto& d :
         {"central-round-robin", "central-random", "distributed-synchronous",
          "distributed-random-subset", "adversary-max-index"}) {
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        cases.push_back({n, d, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KStateConvergence, ::testing::ValuesIn(convergence_cases()),
    [](const ::testing::TestParamInfo<ConvergenceCase>& param_info) {
      std::string name = "n" + std::to_string(param_info.param.n) + "_" +
                         param_info.param.daemon + "_s" +
                         std::to_string(param_info.param.seed);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(KStateToken, TokenCirculatesInOrder) {
  // In legitimate configurations the (unique) token visits processes in
  // ring order — each process eventually holds it (no starvation).
  const std::size_t n = 6;
  KStateRing ring(n, 7);
  stab::Engine<KStateRing> engine(ring, KStateConfig(n));
  stab::CentralRoundRobinDaemon daemon;
  std::vector<std::size_t> holders;
  for (int t = 0; t < 12; ++t) {
    const auto enabled = engine.enabled_indices();
    ASSERT_EQ(enabled.size(), 1u);
    holders.push_back(enabled[0]);
    ASSERT_TRUE(engine.step_with(daemon));
  }
  EXPECT_EQ(holders, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 0, 1, 2, 3,
                                               4, 5}));
}

TEST(KStateTraceStyle, MarksTokenHolder) {
  KStateRing ring(3, 4);
  auto style = trace_style(ring);
  const KStateConfig config = make_config({1, 0, 0});
  EXPECT_EQ(style.format_state(config[0]), "1");
  EXPECT_EQ(style.annotate(config, 1), "T");
  EXPECT_EQ(style.annotate(config, 0), "");
  EXPECT_EQ(style.annotate(config, 2), "");
}

TEST(RandomConfig, StaysInDomain) {
  KStateRing ring(6, 9);
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const auto c = random_config(ring, rng);
    ASSERT_EQ(c.size(), 6u);
    for (const auto& s : c) EXPECT_LT(s.x, 9u);
  }
}

}  // namespace
}  // namespace ssr::dijkstra
