// Unit tests for the text-table renderer used by the benchmark harness.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ssr {
namespace {

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(3.100, 3), "3.1");
  EXPECT_EQ(format_double(4.000, 3), "4");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(-2.50, 2), "-2.5");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(format_double(1.0 / 3.0, 4), "0.3333");
}

TEST(TextTable, BasicRender) {
  TextTable t({"name", "count"});
  t.row().cell("alpha").cell(3);
  t.row().cell("beta").cell(12);
  const std::string out = t.render();
  // Header, rule, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12"), std::string::npos);
  std::size_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
}

TEST(TextTable, NumbersRightAligned) {
  TextTable t({"v"});
  t.row().cell(5);
  t.row().cell(12345);
  const std::string out = t.render();
  // "5" must be padded on the left to the width of 12345.
  EXPECT_NE(out.find("    5"), std::string::npos);
}

TEST(TextTable, MixedCellTypes) {
  TextTable t({"a", "b", "c", "d"});
  t.row().cell(1.5).cell(std::uint64_t{7}).cell(true).cell("text");
  const std::string out = t.render();
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("text"), std::string::npos);
}

TEST(TextTable, AddRowInitializerList) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsCellBeforeRow) {
  TextTable t({"x"});
  EXPECT_THROW(t.cell("oops"), std::invalid_argument);
}

TEST(TextTable, RejectsTooManyCells) {
  TextTable t({"x"});
  t.row().cell("one");
  EXPECT_THROW(t.cell("two"), std::invalid_argument);
}

TEST(TextTable, ShortRowsRenderPadded) {
  TextTable t({"x", "y"});
  t.row().cell("only");
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, StreamOperator) {
  TextTable t({"h"});
  t.row().cell(1);
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.render());
}

}  // namespace
}  // namespace ssr
