// Convergence tests (Lemma 6 / Lemma 7 / Theorem 2): from arbitrary
// initial configurations, under every daemon family including unfair
// adversaries, SSRmin reaches a legitimate configuration within the O(n^2)
// budget — and stays legitimate afterwards.
#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"

namespace ssr::core {
namespace {

/// Step budget: Lemma 7/8 give 3n^2 + 3n(n-1)/2 * (constant) steps; we use
/// a generous constant factor so the test asserts the *order*, not the
/// exact constants of the paper's accounting.
std::uint64_t budget(std::size_t n) {
  return 60ULL * n * n + 200;
}

struct Case {
  std::size_t n;
  std::string daemon;
  std::uint64_t seed;
};

class SsrConvergence : public ::testing::TestWithParam<Case> {};

TEST_P(SsrConvergence, RandomInitialConfigurationStabilizes) {
  const auto& param = GetParam();
  const auto K = static_cast<std::uint32_t>(param.n + 1);
  const SsrMinRing ring(param.n, K);
  Rng rng(param.seed);
  stab::Engine<SsrMinRing> engine(ring, random_config(ring, rng));
  auto daemon = stab::make_daemon(param.daemon, Rng(param.seed * 31 + 7));
  auto legit = [&ring](const SsrConfig& c) { return is_legitimate(ring, c); };
  const auto result = stab::run_until(engine, *daemon, legit, budget(param.n));
  ASSERT_TRUE(result.reached)
      << "n=" << param.n << " daemon=" << param.daemon
      << " seed=" << param.seed;
  ASSERT_FALSE(result.deadlocked);
  // Closure after convergence: remain legitimate for a full revolution.
  for (std::size_t t = 0; t < 3 * param.n; ++t) {
    ASSERT_TRUE(engine.step_with(*daemon));
    ASSERT_TRUE(is_legitimate(ring, engine.config()));
  }
}

std::vector<Case> sweep() {
  std::vector<Case> cases;
  for (std::size_t n : {3u, 4u, 6u, 10u, 16u}) {
    for (const auto& d :
         {"central-round-robin", "central-random", "distributed-synchronous",
          "distributed-random-subset", "adversary-max-index"}) {
      for (std::uint64_t seed : {11u, 22u, 33u}) cases.push_back({n, d, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsrConvergence, ::testing::ValuesIn(sweep()),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      std::string name = "n" + std::to_string(param_info.param.n) + "_" +
                         param_info.param.daemon + "_s" +
                         std::to_string(param_info.param.seed);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Convergence, NoDeadlockAlongAnyObservedExecution) {
  // Lemma 4 corollary: step_with never reports an empty enabled set.
  const SsrMinRing ring(6, 7);
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    stab::Engine<SsrMinRing> engine(ring, random_config(ring, rng));
    stab::RandomSubsetDaemon daemon{rng.split(), 0.4};
    for (int t = 0; t < 300; ++t) {
      ASSERT_TRUE(engine.step_with(daemon)) << "deadlock at step " << t;
    }
  }
}

TEST(Convergence, Lemma7FromDijkstraLegitimateXPart) {
  // When the x-part is already a legitimate Dijkstra configuration, SSRmin
  // converges within 3n*n + 4 steps (Lemma 7). Start from such
  // configurations with adversarial rts/tra noise.
  const std::size_t n = 8;
  const SsrMinRing ring(n, 9);
  Rng rng(55);
  for (int trial = 0; trial < 40; ++trial) {
    // Dijkstra-legitimate x-part with the token at a random t.
    const auto t = static_cast<std::size_t>(rng.below(n));
    const auto x = static_cast<std::uint32_t>(rng.below(9));
    SsrConfig config(n);
    for (std::size_t i = 0; i < n; ++i) {
      config[i].x = (i < t) ? (x + 1) % 9 : x;
      config[i].rts = rng.bernoulli(0.5);
      config[i].tra = rng.bernoulli(0.5);
    }
    ASSERT_TRUE(dijkstra_part_legitimate(ring, config));
    stab::Engine<SsrMinRing> engine(ring, config);
    stab::CentralRandomDaemon daemon{rng.split()};
    auto legit = [&ring](const SsrConfig& c) {
      return is_legitimate(ring, c);
    };
    const auto result =
        stab::run_until(engine, daemon, legit, 3 * n * n + 4);
    EXPECT_TRUE(result.reached) << "trial " << trial;
  }
}

TEST(Convergence, DijkstraPartStaysLegitimateOnceReached) {
  // Lemma 8 / Theorem 2 structure: once the embedded Dijkstra ring is
  // legitimate it remains so under any further SSRmin execution.
  const std::size_t n = 7;
  const SsrMinRing ring(n, 8);
  Rng rng(77);
  stab::Engine<SsrMinRing> engine(ring, random_config(ring, rng));
  stab::RandomSubsetDaemon daemon{Rng(5), 0.6};
  bool reached = false;
  for (int t = 0; t < 5000; ++t) {
    if (!reached && dijkstra_part_legitimate(ring, engine.config())) {
      reached = true;
    }
    if (reached) {
      ASSERT_TRUE(dijkstra_part_legitimate(ring, engine.config()))
          << "x-part left the legitimate set at step " << t;
    }
    ASSERT_TRUE(engine.step_with(daemon));
  }
  EXPECT_TRUE(reached);
}

TEST(Convergence, SingleBitCorruptionRecoversQuickly) {
  // Transient-fault scenario: flip one flag in a legitimate configuration;
  // the system returns to legitimacy well within the O(n^2) budget.
  const std::size_t n = 10;
  const SsrMinRing ring(n, 11);
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    stab::Engine<SsrMinRing> engine(ring, canonical_legitimate(ring, 2));
    // Corrupt a random process with a random state.
    const auto victim = static_cast<std::size_t>(rng.below(n));
    SsrState bad;
    bad.x = static_cast<std::uint32_t>(rng.below(11));
    bad.rts = rng.bernoulli(0.5);
    bad.tra = rng.bernoulli(0.5);
    engine.corrupt(victim, bad);
    stab::CentralRandomDaemon daemon{rng.split()};
    auto legit = [&ring](const SsrConfig& c) {
      return is_legitimate(ring, c);
    };
    const auto result = stab::run_until(engine, daemon, legit, budget(n));
    EXPECT_TRUE(result.reached) << "trial " << trial;
  }
}

TEST(Convergence, EmpiricalStepsScaleSubQuadratically) {
  // Theorem 2 sanity: mean observed convergence steps divided by n^2 must
  // not grow with n (i.e. the empirical exponent is at most 2).
  std::vector<double> normalized;
  for (std::size_t n : {8u, 16u, 32u}) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const SsrMinRing ring(n, K);
    Rng rng(900 + n);
    double total = 0;
    const int kTrials = 20;
    for (int trial = 0; trial < kTrials; ++trial) {
      stab::Engine<SsrMinRing> engine(ring, random_config(ring, rng));
      stab::CentralRandomDaemon daemon{rng.split()};
      auto legit = [&ring](const SsrConfig& c) {
        return is_legitimate(ring, c);
      };
      const auto result = stab::run_until(engine, daemon, legit, budget(n));
      ASSERT_TRUE(result.reached);
      total += static_cast<double>(result.steps);
    }
    normalized.push_back(total / kTrials / (static_cast<double>(n) * n));
  }
  // Allow noise, but the n^2-normalized cost must not blow up.
  EXPECT_LT(normalized[2], normalized[0] * 4.0 + 1.0);
}

}  // namespace
}  // namespace ssr::core
