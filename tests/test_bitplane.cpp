// Edge-case and differential tests for the bit-plane primitives in
// util/bitplane.hpp — the substrate under core::SlicedSsrMin,
// dijkstra::SlicedKState and the sliced model-checker Phase A.
//
// The two historical hazard zones get exhaustive treatment:
//
//  * digit_inc_mod's wrap logic has TWO distinct witnesses: the neq_k
//    compare (x + 1 == K while the sum still fits in d planes) and the
//    ripple carry-out (K == 2^d, where the +1 overflows the planes and
//    K mod 2^d == 0 makes the compare vacuous). Every modulus in
//    [2, 1024] is checked at every value in [0, K), so both paths and
//    their boundary are pinned, plus spot checks at the u32 extremes.
//
//  * apply_command's rolling-save: one saved digit carries each
//    overwritten predecessor to its successor. n == 2 and n == 3 are the
//    smallest rings where every save/skip interleaving exists; all 2^n
//    per-lane selection subsets are laid across the lanes and rotated so
//    every lane exercises every shape, differentially against a scalar
//    model of C_i.
//
// Everything is templated on the lane word and run at 64 (u64), 256
// (WideWord<4>) and 512 (WideWord<8>) lanes — WideWord is portable
// limb-loop C++, so this TU instantiates the wide forms directly without
// any SIMD flags; the dispatch-level backend selection is covered in
// test_batch_engine.cpp.
#include "util/bitplane.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ssr::util {
namespace {

// ---------------------------------------------------------------------------
// digit_inc_mod: exhaustive differential over all K in [2, 1024].

TEST(DigitIncMod, ExhaustiveAllModuliAllValues) {
  for (std::uint32_t K = 2; K <= 1024; ++K) {
    const unsigned d = digit_plane_count(K);
    std::vector<std::uint64_t> x(d), out(d);
    for (std::uint32_t base = 0; base < K; base += 64) {
      const auto lanes = std::min<std::uint32_t>(64, K - base);
      // Unloaded tail lanes keep value 0, so every lane stays in range.
      std::fill(x.begin(), x.end(), 0);
      for (std::uint32_t l = 0; l < lanes; ++l) {
        digit_set_lane(x.data(), d, l, base + l);
      }
      digit_inc_mod(x.data(), out.data(), d, K);
      for (std::uint32_t l = 0; l < 64; ++l) {
        const std::uint32_t v = l < lanes ? base + l : 0;
        ASSERT_EQ(digit_get_lane(out.data(), d, l), (v + 1) % K)
            << "K=" << K << " x=" << v;
      }
    }
  }
}

TEST(DigitIncMod, PowerOfTwoCarryOutIsTheOnlyWrapWitness) {
  // K == 2^d: x = K-1 is all-ones across the d planes, so the +1 leaves
  // out[] == 0 == K mod 2^d and the neq_k compare cannot see the wrap;
  // only the ripple carry-out can. Mix wrap and non-wrap lanes so a
  // carry word leaking into other lanes would be caught too.
  for (unsigned dpow = 1; dpow <= 10; ++dpow) {
    const std::uint32_t K = 1u << dpow;
    const unsigned d = digit_plane_count(K);
    ASSERT_EQ(d, dpow);
    std::vector<std::uint64_t> x(d), out(d);
    for (std::uint32_t l = 0; l < 64; ++l) {
      digit_set_lane(x.data(), d, l, l % 2 == 0 ? K - 1 : l % K);
    }
    digit_inc_mod(x.data(), out.data(), d, K);
    for (std::uint32_t l = 0; l < 64; ++l) {
      const std::uint32_t v = l % 2 == 0 ? K - 1 : l % K;
      ASSERT_EQ(digit_get_lane(out.data(), d, l), (v + 1) % K)
          << "K=" << K << " lane=" << l;
    }
  }
}

TEST(DigitIncMod, U32ExtremesStayExact) {
  // The widest moduli a u32 permits: 2^31 (carry-out wrap at d == 31),
  // 2^32 - 1 (d == 32, compare-witnessed wrap) and a 2^16 midpoint.
  for (std::uint32_t K : {0x80000000u, 0xFFFFFFFFu, 0x10000u}) {
    const unsigned d = digit_plane_count(K);
    ASSERT_LE(d, kMaxDigitPlanes);
    std::vector<std::uint64_t> x(d), out(d);
    const std::uint32_t probes[] = {0, 1, K / 2, K - 2, K - 1};
    for (unsigned l = 0; l < 5; ++l) digit_set_lane(x.data(), d, l, probes[l]);
    digit_inc_mod(x.data(), out.data(), d, K);
    for (unsigned l = 0; l < 5; ++l) {
      ASSERT_EQ(digit_get_lane(out.data(), d, l),
                probes[l] + 1 == K ? 0 : probes[l] + 1)
          << "K=" << K << " x=" << probes[l];
    }
  }
}

template <typename W>
void expect_wide_inc_matches_u64(std::uint64_t seed) {
  using T = LaneTraits<W>;
  Rng rng(seed);
  for (std::uint32_t K : {2u, 3u, 4u, 7u, 8u, 1000u, 1024u}) {
    const unsigned d = digit_plane_count(K);
    std::vector<std::uint64_t> nx(d), nout(d);
    std::vector<W> wx(d, T::zero()), wout(d, T::zero());
    // Each 64-lane limb group carries an independent random u64 problem.
    for (unsigned g = 0; g < T::kLimbs; ++g) {
      for (unsigned l = 0; l < 64; ++l) {
        digit_set_lane(nx.data(), d, l,
                       static_cast<std::uint32_t>(rng() % K));
      }
      digit_inc_mod(nx.data(), nout.data(), d, K);
      for (unsigned b = 0; b < d; ++b) T::set_limb(wx[b], g, nx[b]);
      for (unsigned l = 0; l < 64; ++l) {
        ASSERT_EQ(digit_get_lane(wx.data(), d, g * 64 + l),
                  digit_get_lane(nx.data(), d, l));
      }
      // Stash the u64 answer in the output word's limb for comparison.
      for (unsigned b = 0; b < d; ++b) T::set_limb(wout[b], g, nout[b]);
    }
    const std::vector<W> expected = wout;
    digit_inc_mod(wx.data(), wout.data(), d, K);
    for (unsigned b = 0; b < d; ++b) {
      ASSERT_EQ(wout[b], expected[b]) << "K=" << K << " plane " << b;
    }
  }
}

TEST(DigitIncMod, WideWordsMatchU64LimbForLimb) {
  expect_wide_inc_matches_u64<Lane256>(21);
  expect_wide_inc_matches_u64<Lane512>(22);
}

// ---------------------------------------------------------------------------
// apply_command: rolling-save differential against a scalar model of C_i.

/// Applies C_i to one lane's scalar configuration: P_0 takes
/// (old x_{n-1} + 1) mod K, P_i copies old x_{i-1}; all reads pre-step.
std::vector<std::uint32_t> scalar_command(const std::vector<std::uint32_t>& x,
                                          std::uint32_t subset,
                                          std::uint32_t K) {
  const std::size_t n = x.size();
  std::vector<std::uint32_t> out = x;
  for (std::size_t i = 0; i < n; ++i) {
    if ((subset >> i) & 1u) {
      out[i] = i == 0 ? (x[n - 1] + 1) % K : x[i - 1];
    }
  }
  return out;
}

template <typename W>
void expect_apply_matches_scalar(std::size_t n, std::uint32_t K,
                                 std::uint64_t seed) {
  using T = LaneTraits<W>;
  const std::uint32_t subsets = 1u << n;
  ASSERT_LE(subsets, T::kLanes);
  BasicSlicedDigits<W> digits(n, K);
  Rng rng(seed);
  std::vector<std::vector<std::uint32_t>> lane(T::kLanes,
                                               std::vector<std::uint32_t>(n));
  for (unsigned l = 0; l < T::kLanes; ++l) {
    for (std::size_t i = 0; i < n; ++i) {
      lane[l][i] = static_cast<std::uint32_t>(rng() % K);
      digits.set_lane(i, l, lane[l][i]);
    }
  }
  for (std::size_t i = 0; i < n; ++i) digits.update_neq(i);
  // Rotating the subset assignment over `subsets` rounds puts every
  // selection shape (including the empty one) in every lane position, so
  // each rolling-save interleaving meets each lane alignment.
  for (std::uint32_t round = 0; round < subsets; ++round) {
    std::vector<W> mx(n, T::zero());
    for (unsigned l = 0; l < T::kLanes; ++l) {
      const std::uint32_t subset = (l + round) % subsets;
      for (std::size_t i = 0; i < n; ++i) {
        if ((subset >> i) & 1u) T::set(mx[i], l);
      }
      lane[l] = scalar_command(lane[l], subset, K);
    }
    digits.apply_command(mx.data());
    for (std::size_t i = 0; i < n; ++i) digits.update_neq(i);
    for (unsigned l = 0; l < T::kLanes; ++l) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(digits.get_lane(i, l), lane[l][i])
            << "n=" << n << " K=" << K << " round=" << round << " lane=" << l
            << " i=" << i;
        const std::size_t p = i == 0 ? n - 1 : i - 1;
        ASSERT_EQ(T::test(digits.neq(i), l) ? 1u : 0u,
                  lane[l][i] != lane[l][p] ? 1u : 0u)
            << "n=" << n << " K=" << K << " round=" << round << " lane=" << l
            << " i=" << i;
      }
    }
  }
}

TEST(SlicedDigitsApply, RollingSaveMatchesScalarAtN2AndN3) {
  // n == 2: P_1's predecessor is P_0, which may itself have just moved —
  // the save must hand P_1 the pre-increment x_0. n == 3 adds the
  // skip-then-save resync. K covers power-of-two wrap and odd moduli.
  for (std::size_t n : {2u, 3u}) {
    for (std::uint32_t K : {3u, 4u, 5u, 6u, 7u, 8u}) {
      expect_apply_matches_scalar<std::uint64_t>(n, K, 100 * n + K);
    }
  }
}

TEST(SlicedDigitsApply, RollingSaveMatchesScalarAtWiderRings) {
  for (std::size_t n : {4u, 6u}) {
    expect_apply_matches_scalar<std::uint64_t>(n, n + 1, 500 + n);
  }
}

TEST(SlicedDigitsApply, WideWordsMatchScalarModel) {
  expect_apply_matches_scalar<Lane256>(3, 4, 31);
  expect_apply_matches_scalar<Lane256>(2, 8, 32);
  expect_apply_matches_scalar<Lane512>(3, 4, 33);
  expect_apply_matches_scalar<Lane512>(2, 8, 34);
}

// ---------------------------------------------------------------------------
// Constructor / range guards.

TEST(SlicedDigits, GuardsRejectBadArguments) {
  EXPECT_THROW(SlicedDigits(1, 4), std::invalid_argument);
  EXPECT_THROW(digit_plane_count(0), std::invalid_argument);
  EXPECT_THROW(digit_plane_count(1), std::invalid_argument);
  SlicedDigits d(2, 5);
  EXPECT_THROW(d.set_lane(0, 0, 5), std::invalid_argument);
  EXPECT_THROW(d.set_lanes_masked(0, ~0ULL, 5), std::invalid_argument);
}

TEST(SlicedDigits, U32ExtremesFitTheScratchBound) {
  // The fixed kMaxDigitPlanes scratch in apply_command/step_shape must
  // cover any u32 modulus: bit_width(K - 1) maxes out at 32.
  SlicedDigits top(2, 0xFFFFFFFFu);
  EXPECT_EQ(top.digits(), 32u);
  EXPECT_LE(top.digits(), kMaxDigitPlanes);
  SlicedDigits pow31(2, 0x80000000u);
  EXPECT_EQ(pow31.digits(), 31u);
  top.set_lane(0, 7, 0xFFFFFFFEu);
  EXPECT_EQ(top.get_lane(0, 7), 0xFFFFFFFEu);
  const std::uint64_t mx[2] = {1ULL << 7, 0};
  top.apply_command(mx);  // P_0 bumps x_1 = 0 to 1 in lane 7 only
  EXPECT_EQ(top.get_lane(0, 7), 1u);
  EXPECT_EQ(top.get_lane(0, 6), 0u);
}

// ---------------------------------------------------------------------------
// LaneTraits / WideWord surface.

template <typename W>
void expect_traits_consistent() {
  using T = LaneTraits<W>;
  EXPECT_EQ(T::kLanes, 64u * T::kLimbs);
  EXPECT_FALSE(T::any(T::zero()));
  EXPECT_TRUE(T::any(T::ones()));
  EXPECT_EQ(T::popcount(T::zero()), 0u);
  EXPECT_EQ(T::popcount(T::ones()), T::kLanes);
  for (unsigned lane : {0u, 1u, 63u, T::kLanes / 2, T::kLanes - 1}) {
    const W bit = T::lane_bit(lane);
    EXPECT_EQ(T::popcount(bit), 1u);
    EXPECT_TRUE(T::test(bit, lane));
    W w = T::zero();
    T::set(w, lane);
    EXPECT_EQ(w, bit);
  }
  // range_mask: every (lo, hi) shape against the per-lane definition,
  // including empty, full, limb-straddling and hi-past-the-end windows.
  const unsigned probes[] = {0,
                             1,
                             5,
                             63,
                             64,
                             T::kLanes / 2,
                             T::kLanes - 1,
                             T::kLanes,
                             T::kLanes + 7};
  for (unsigned lo : probes) {
    if (lo > T::kLanes) continue;
    for (unsigned hi : probes) {
      if (hi < lo) continue;
      const W m = T::range_mask(lo, std::min(hi, T::kLanes));
      for (unsigned lane = 0; lane < T::kLanes; ++lane) {
        ASSERT_EQ(T::test(m, lane), lane >= lo && lane < hi)
            << "lo=" << lo << " hi=" << hi << " lane=" << lane;
      }
    }
  }
  // for_each_lane visits exactly the set lanes, in ascending order.
  W w = T::zero();
  const std::vector<unsigned> want = {0, 3, 63, T::kLanes - 1};
  for (unsigned lane : want) T::set(w, lane);
  std::vector<unsigned> got;
  T::for_each_lane(w, [&](unsigned lane) { got.push_back(lane); });
  std::vector<unsigned> expected(want.begin(), want.end());
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(got, expected);
  // limb round trip.
  W v = T::zero();
  for (unsigned g = 0; g < T::kLimbs; ++g) {
    T::set_limb(v, g, 0x0123456789ABCDEFULL * (g + 1));
  }
  for (unsigned g = 0; g < T::kLimbs; ++g) {
    EXPECT_EQ(T::limb(v, g), 0x0123456789ABCDEFULL * (g + 1));
  }
}

TEST(LaneTraits, U64SurfaceIsConsistent) {
  expect_traits_consistent<std::uint64_t>();
}
TEST(LaneTraits, Lane256SurfaceIsConsistent) {
  expect_traits_consistent<Lane256>();
}
TEST(LaneTraits, Lane512SurfaceIsConsistent) {
  expect_traits_consistent<Lane512>();
}

template <typename W>
void expect_bitwise_ops_match_limbwise(std::uint64_t seed) {
  using T = LaneTraits<W>;
  Rng rng(seed);
  W a = T::zero(), b = T::zero();
  for (unsigned g = 0; g < T::kLimbs; ++g) {
    T::set_limb(a, g, rng());
    T::set_limb(b, g, rng());
  }
  const W and_w = a & b, or_w = a | b, xor_w = a ^ b, not_w = ~a;
  for (unsigned g = 0; g < T::kLimbs; ++g) {
    EXPECT_EQ(T::limb(and_w, g), T::limb(a, g) & T::limb(b, g));
    EXPECT_EQ(T::limb(or_w, g), T::limb(a, g) | T::limb(b, g));
    EXPECT_EQ(T::limb(xor_w, g), T::limb(a, g) ^ T::limb(b, g));
    EXPECT_EQ(T::limb(not_w, g), ~T::limb(a, g));
  }
  W c = a;
  c &= b;
  EXPECT_EQ(c, and_w);
  c = a;
  c |= b;
  EXPECT_EQ(c, or_w);
  c = a;
  c ^= b;
  EXPECT_EQ(c, xor_w);
}

TEST(WideWord, OperatorsMatchLimbwiseU64) {
  expect_bitwise_ops_match_limbwise<Lane256>(41);
  expect_bitwise_ops_match_limbwise<Lane512>(42);
}

template <typename W>
void expect_masked_helpers_match_perlane(std::uint64_t seed) {
  using T = LaneTraits<W>;
  Rng rng(seed);
  const std::uint32_t K = 11;
  const unsigned d = digit_plane_count(K);
  std::vector<W> dst(d, T::zero()), src(d, T::zero());
  std::vector<std::uint32_t> dv(T::kLanes), sv(T::kLanes);
  for (unsigned l = 0; l < T::kLanes; ++l) {
    dv[l] = static_cast<std::uint32_t>(rng() % K);
    sv[l] = static_cast<std::uint32_t>(rng() % K);
    digit_set_lane(dst.data(), d, l, dv[l]);
    digit_set_lane(src.data(), d, l, sv[l]);
  }
  const W neq = digit_neq(dst.data(), src.data(), d);
  for (unsigned l = 0; l < T::kLanes; ++l) {
    ASSERT_EQ(T::test(neq, l), dv[l] != sv[l]) << "lane " << l;
  }
  W mask = T::zero();
  for (unsigned g = 0; g < T::kLimbs; ++g) T::set_limb(mask, g, rng());
  digit_copy_masked(dst.data(), src.data(), d, mask);
  for (unsigned l = 0; l < T::kLanes; ++l) {
    ASSERT_EQ(digit_get_lane(dst.data(), d, l),
              T::test(mask, l) ? sv[l] : dv[l])
        << "lane " << l;
  }
  digit_fill_masked(dst.data(), 7, d, mask);
  for (unsigned l = 0; l < T::kLanes; ++l) {
    ASSERT_EQ(digit_get_lane(dst.data(), d, l),
              T::test(mask, l) ? 7u : dv[l])
        << "lane " << l;
  }
}

TEST(BitplaneHelpers, MaskedOpsMatchPerLaneModel) {
  expect_masked_helpers_match_perlane<std::uint64_t>(51);
  expect_masked_helpers_match_perlane<Lane256>(52);
  expect_masked_helpers_match_perlane<Lane512>(53);
}

}  // namespace
}  // namespace ssr::util
