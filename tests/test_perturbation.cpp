// Tests for the exhaustive single-fault (superstabilization-flavored)
// analysis.
#include "verify/perturbation.hpp"

#include <gtest/gtest.h>

namespace ssr::verify {
namespace {

TEST(Perturbation, CaseCountIsExhaustive) {
  const PerturbationReport r = analyze_single_faults(3, 4);
  // 3nK legitimate configurations x n processes x (4K - 1) wrong states.
  EXPECT_EQ(r.cases, 3u * 3 * 4 * 3 * (4 * 4 - 1));
  EXPECT_EQ(r.n, 3u);
  EXPECT_EQ(r.k, 4u);
}

TEST(Perturbation, SafetyIsNeverViolated) {
  // A single corrupted process cannot extinguish all tokens: Lemma 3's
  // "some G_i is true" argument is configuration-independent.
  for (auto [n, K] : {std::pair<std::size_t, std::uint32_t>{3, 4},
                      std::pair<std::size_t, std::uint32_t>{3, 5},
                      std::pair<std::size_t, std::uint32_t>{4, 5}}) {
    const PerturbationReport r = analyze_single_faults(n, K);
    EXPECT_TRUE(r.safety_preserved) << r.summary();
  }
}

TEST(Perturbation, RecoveryBoundedByGlobalWorstCase) {
  const PerturbationReport r = analyze_single_faults(4, 5);
  EXPECT_GT(r.max_recovery_steps, 0u);
  EXPECT_LE(r.max_recovery_steps, r.global_worst_case);
}

TEST(Perturbation, SingleFaultRecoveryIsLocal) {
  // The superstabilization-flavored locality property: a single fault
  // recovers measurably faster (on average) than the global worst case.
  const PerturbationReport r = analyze_single_faults(4, 5);
  EXPECT_LT(r.mean_recovery_steps,
            0.75 * static_cast<double>(r.global_worst_case));
}

TEST(Perturbation, HistogramSumsToRecoveringCases) {
  const PerturbationReport r = analyze_single_faults(3, 4);
  std::uint64_t total = 0;
  for (std::uint64_t c : r.histogram) total += c;
  EXPECT_EQ(total, r.cases - r.still_legitimate);
  ASSERT_FALSE(r.histogram.empty());
  EXPECT_EQ(r.histogram.size(), r.max_recovery_steps + 1);
}

TEST(Perturbation, SomeFaultsLandLegitimate) {
  // E.g. corrupting x at a process whose x is free in some shape, or
  // toggling flags into another legitimate shape.
  const PerturbationReport r = analyze_single_faults(3, 4);
  EXPECT_GT(r.still_legitimate, 0u);
  EXPECT_LT(r.still_legitimate, r.cases);
}

TEST(Perturbation, SummaryMentionsKeyFigures) {
  const PerturbationReport r = analyze_single_faults(3, 4);
  const std::string s = r.summary();
  EXPECT_NE(s.find("max_recovery="), std::string::npos);
  EXPECT_NE(s.find("safety=preserved"), std::string::npos);
}

}  // namespace
}  // namespace ssr::verify
