// Stress test for the seqlocked HolderBoard, designed to catch the
// original torn-snapshot bug (writers stored their bit and then bumped
// the version once, so a reader could certify a mid-update read as
// consistent).
//
// Detector: writers keep the pair invariant "bit 2k == bit 2k+1" — every
// publish_batch writes both bits of one pair to the same value. Any
// consistent snapshot that observes an unequal pair is therefore a torn
// read certified as consistent, which is exactly the reported bug. Under
// the odd/even protocol with serialized writers this can never happen;
// under the old scheme this test fails within milliseconds. Run under
// TSan in CI.
#include "runtime/holder_board.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace ssr::runtime {
namespace {

TEST(HolderBoard, PublishAndSampleBasics) {
  HolderBoard board(4);
  HolderSnapshot snap = board.sample();
  ASSERT_TRUE(snap.consistent);
  EXPECT_EQ(snap.holders, std::vector<bool>({false, false, false, false}));
  board.publish(2, true);
  snap = board.sample();
  ASSERT_TRUE(snap.consistent);
  EXPECT_EQ(snap.holders, std::vector<bool>({false, false, true, false}));
  board.publish_batch([](auto&& set) {
    set(0, true);
    set(2, false);
  });
  snap = board.sample();
  ASSERT_TRUE(snap.consistent);
  EXPECT_EQ(snap.holders, std::vector<bool>({true, false, false, false}));
}

TEST(HolderBoardStress, ConsistentSnapshotsNeverTearPairs) {
  constexpr std::size_t kPairs = 4;
  HolderBoard board(2 * kPairs);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> consistent{0};

  // Writers: each repeatedly flips one pair atomically (both bits in one
  // seqlock window). Two writers per pair maximizes version contention.
  std::vector<std::jthread> writers;
  for (std::size_t w = 0; w < 2 * kPairs; ++w) {
    writers.emplace_back([&board, &stop, w] {
      Rng rng(w + 1);
      const std::size_t pair = w % kPairs;
      while (!stop.load(std::memory_order_relaxed)) {
        const bool value = rng.bernoulli(0.5);
        board.publish_batch([&](auto&& set) {
          set(2 * pair, value);
          set(2 * pair + 1, value);
        });
      }
    });
  }

  // Readers: any consistent snapshot must satisfy the pair invariant.
  std::vector<std::jthread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&board, &stop, &torn, &consistent] {
      while (!stop.load(std::memory_order_relaxed)) {
        const HolderSnapshot snap = board.sample();
        if (!snap.consistent) continue;
        consistent.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t p = 0; p < kPairs; ++p) {
          if (snap.holders[2 * p] != snap.holders[2 * p + 1]) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  writers.clear();
  readers.clear();

  EXPECT_EQ(torn.load(), 0u)
      << "a snapshot certified consistent saw a half-written pair";
  // The retry loop must still let plenty of snapshots through despite the
  // writer storm (sample() is optimistic, not starvation-prone at these
  // rates).
  EXPECT_GT(consistent.load(), 1000u);
}

}  // namespace
}  // namespace ssr::runtime
