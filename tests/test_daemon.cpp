// Unit tests for the scheduler (daemon) implementations.
#include "stabilizing/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ssr::stab {
namespace {

EnabledView make_view(const std::vector<std::size_t>& idx,
                      const std::vector<int>& rules, std::size_t n) {
  return EnabledView{idx, rules, n};
}

bool is_subset(const std::vector<std::size_t>& sel,
               const std::vector<std::size_t>& enabled) {
  return std::all_of(sel.begin(), sel.end(), [&](std::size_t id) {
    return std::find(enabled.begin(), enabled.end(), id) != enabled.end();
  });
}

TEST(CentralRoundRobin, PicksExactlyOneEnabled) {
  CentralRoundRobinDaemon d;
  const std::vector<std::size_t> enabled{1, 3, 4};
  const std::vector<int> rules{1, 1, 1};
  for (int i = 0; i < 20; ++i) {
    auto sel = d.select(make_view(enabled, rules, 6));
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_TRUE(is_subset(sel, enabled));
  }
}

TEST(CentralRoundRobin, CyclesThroughProcesses) {
  CentralRoundRobinDaemon d;
  const std::vector<std::size_t> enabled{0, 1, 2};
  const std::vector<int> rules{1, 1, 1};
  std::vector<std::size_t> order;
  for (int i = 0; i < 6; ++i) {
    order.push_back(d.select(make_view(enabled, rules, 3))[0]);
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(CentralRoundRobin, SkipsDisabledIds) {
  CentralRoundRobinDaemon d;
  const std::vector<int> rules{1};
  // Only process 4 enabled; cursor must wrap to find it repeatedly.
  for (int i = 0; i < 5; ++i) {
    auto sel = d.select(make_view({4}, rules, 6));
    EXPECT_EQ(sel, std::vector<std::size_t>{4});
  }
}

TEST(CentralRandom, AlwaysSingletonSubset) {
  CentralRandomDaemon d{Rng(1)};
  const std::vector<std::size_t> enabled{0, 2, 5, 7};
  const std::vector<int> rules{1, 2, 3, 4};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    auto sel = d.select(make_view(enabled, rules, 8));
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_TRUE(is_subset(sel, enabled));
    seen.insert(sel[0]);
  }
  // All four enabled processes should be hit over 200 draws.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Synchronous, SelectsAllEnabled) {
  SynchronousDaemon d;
  const std::vector<std::size_t> enabled{1, 2, 6};
  const std::vector<int> rules{1, 1, 1};
  EXPECT_EQ(d.select(make_view(enabled, rules, 8)), enabled);
}

TEST(RandomSubset, NonEmptySubsetAlways) {
  RandomSubsetDaemon d{Rng(2), 0.25};
  const std::vector<std::size_t> enabled{0, 1, 2, 3};
  const std::vector<int> rules{1, 1, 1, 1};
  for (int i = 0; i < 500; ++i) {
    auto sel = d.select(make_view(enabled, rules, 4));
    ASSERT_FALSE(sel.empty());
    EXPECT_TRUE(is_subset(sel, enabled));
  }
}

TEST(RandomSubset, ProbabilityOneSelectsAll) {
  RandomSubsetDaemon d{Rng(2), 1.0};
  const std::vector<std::size_t> enabled{0, 3};
  const std::vector<int> rules{1, 1};
  EXPECT_EQ(d.select(make_view(enabled, rules, 4)), enabled);
}

TEST(RandomSubset, RejectsBadProbability) {
  EXPECT_THROW(RandomSubsetDaemon(Rng(1), 0.0), std::invalid_argument);
  EXPECT_THROW(RandomSubsetDaemon(Rng(1), 1.5), std::invalid_argument);
}

TEST(RuleAvoiding, PrefersNonAvoidedRules) {
  RuleAvoidingDaemon d{Rng(3), {2, 4}};
  const std::vector<std::size_t> enabled{0, 1, 2};
  const std::vector<int> rules{2, 3, 4};  // only P1 has a non-avoided rule
  for (int i = 0; i < 50; ++i) {
    auto sel = d.select(make_view(enabled, rules, 3));
    EXPECT_EQ(sel, std::vector<std::size_t>{1});
  }
  EXPECT_EQ(d.forced_steps(), 0u);
}

TEST(RuleAvoiding, ForcedWhenOnlyAvoidedRulesEnabled) {
  RuleAvoidingDaemon d{Rng(3), {2, 4}};
  const std::vector<std::size_t> enabled{0, 1};
  const std::vector<int> rules{2, 4};
  auto sel = d.select(make_view(enabled, rules, 3));
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_TRUE(is_subset(sel, enabled));
  EXPECT_EQ(d.forced_steps(), 1u);
}

TEST(Starving, NeverPicksVictimUnlessAlone) {
  StarvingDaemon d{Rng(4), 2};
  const std::vector<std::size_t> enabled{0, 2, 3};
  const std::vector<int> rules{1, 1, 1};
  for (int i = 0; i < 100; ++i) {
    auto sel = d.select(make_view(enabled, rules, 4));
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_NE(sel[0], 2u);
  }
  // Victim alone: must be selected (the daemon must pick something).
  auto sel = d.select(make_view({2}, {1}, 4));
  EXPECT_EQ(sel, std::vector<std::size_t>{2});
}

TEST(MaxIndex, PicksHighestId) {
  MaxIndexDaemon d;
  EXPECT_EQ(d.select(make_view({0, 3, 5}, {1, 1, 1}, 6)),
            std::vector<std::size_t>{5});
}

TEST(Factory, MakesEveryAdvertisedDaemon) {
  for (const auto& name : daemon_names()) {
    auto d = make_daemon(name, Rng(9));
    ASSERT_NE(d, nullptr) << name;
    EXPECT_EQ(d->name(), name);
    auto sel = d->select(make_view({0, 1}, {1, 1}, 3));
    EXPECT_FALSE(sel.empty()) << name;
  }
}

TEST(Factory, RejectsUnknownName) {
  EXPECT_THROW(make_daemon("no-such-daemon", Rng(1)), std::invalid_argument);
}

TEST(AllDaemons, RejectEmptyEnabledSet) {
  for (const auto& name : daemon_names()) {
    auto d = make_daemon(name, Rng(5));
    EXPECT_THROW(d->select(make_view({}, {}, 4)), std::invalid_argument)
        << name;
  }
}

}  // namespace
}  // namespace ssr::stab
