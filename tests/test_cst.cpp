// Tests for the discrete-event CST simulation machinery itself: cache
// coherence bookkeeping, event processing, observer integration, and
// parameter validation.
#include "msgpass/cst.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"

namespace ssr::msgpass {
namespace {

NetworkParams quiet_net(std::uint64_t seed = 1) {
  NetworkParams p;
  p.delay_min = 0.5;
  p.delay_max = 1.0;
  p.loss_probability = 0.0;
  p.refresh_interval = 5.0;
  p.service_min = 0.4;
  p.service_max = 0.8;
  p.seed = seed;
  return p;
}

TEST(NetworkParams, Validation) {
  NetworkParams p = quiet_net();
  EXPECT_NO_THROW(p.validate());
  p.delay_min = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = quiet_net();
  p.delay_max = 0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = quiet_net();
  p.loss_probability = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = quiet_net();
  p.refresh_interval = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = quiet_net();
  p.service_max = 0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(CstSimulation, StartsCoherent) {
  core::SsrMinRing ring(5, 6);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                             quiet_net());
  EXPECT_TRUE(sim.coherent());
  EXPECT_EQ(sim.size(), 5u);
  EXPECT_EQ(sim.now(), 0.0);
  // Initial holder: P0 holds primary + secondary -> one holding node.
  EXPECT_EQ(sim.holder_count(), 1u);
}

TEST(CstSimulation, CachesTrackNeighborIndices) {
  core::SsrMinRing ring(4, 5);
  core::SsrConfig init(4);
  for (std::size_t i = 0; i < 4; ++i) init[i].x = static_cast<std::uint32_t>(i);
  auto sim = make_ssrmin_cst(ring, init, quiet_net());
  EXPECT_EQ(sim.cache_pred(0).x, 3u);
  EXPECT_EQ(sim.cache_succ(0).x, 1u);
  EXPECT_EQ(sim.cache_pred(2).x, 1u);
  EXPECT_EQ(sim.cache_succ(3).x, 0u);
}

TEST(CstSimulation, RandomizedCachesBreakCoherence) {
  core::SsrMinRing ring(4, 5);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                             quiet_net(7));
  sim.randomize_caches([](Rng& rng) {
    core::SsrState s;
    s.x = static_cast<std::uint32_t>(rng.below(5));
    s.rts = rng.bernoulli(0.5);
    s.tra = rng.bernoulli(0.5);
    return s;
  });
  // 16 independent random cache entries all matching is essentially
  // impossible with this seed.
  EXPECT_FALSE(sim.coherent());
}

TEST(CstSimulation, TimeAdvancesAndEventsFire) {
  core::SsrMinRing ring(5, 6);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                             quiet_net());
  const CoverageStats stats = sim.run(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
  EXPECT_NEAR(stats.observed_time, 100.0, 1e-9);
  EXPECT_GT(stats.events, 0u);
  EXPECT_GT(stats.deliveries, 0u);
  EXPECT_GT(stats.rule_executions, 0u);
  EXPECT_EQ(stats.losses, 0u);
}

TEST(CstSimulation, ProgressTokensCirculate) {
  core::SsrMinRing ring(5, 6);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                             quiet_net());
  sim.run(300.0);
  // The x values must have advanced beyond the initial 0 somewhere: the
  // primary token made progress around the ring.
  bool advanced = false;
  for (const auto& s : sim.global_config()) {
    if (s.x != 0) advanced = true;
  }
  EXPECT_TRUE(advanced);
  EXPECT_GT(sim.run(50.0).handovers, 0u);
}

TEST(CstSimulation, ObserverIntervalsPartitionTime) {
  core::SsrMinRing ring(4, 5);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 1),
                             quiet_net(3));
  double covered = 0.0;
  double last_end = 0.0;
  sim.set_observer([&](Time from, Time to, const std::vector<bool>& holders) {
    EXPECT_GE(from, last_end - 1e-12);
    EXPECT_GT(to, from);
    EXPECT_EQ(holders.size(), 4u);
    covered += to - from;
    last_end = to;
  });
  sim.run(80.0);
  EXPECT_NEAR(covered, 80.0, 1e-9);
  EXPECT_NEAR(last_end, 80.0, 1e-9);
}

TEST(CstSimulation, RunUntilStopsEarly) {
  core::SsrMinRing ring(5, 6);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                             quiet_net());
  bool stopped = false;
  sim.run_until(
      [](const CstSimulation<core::SsrMinRing>& s) { return s.now() > 10.0; },
      1000.0, &stopped);
  EXPECT_TRUE(stopped);
  EXPECT_LT(sim.now(), 50.0);
}

TEST(CstSimulation, RunUntilDeadlinePassesWhenNeverStopped) {
  core::SsrMinRing ring(5, 6);
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                             quiet_net());
  bool stopped = true;
  sim.run_until([](const CstSimulation<core::SsrMinRing>&) { return false; },
                20.0, &stopped);
  EXPECT_FALSE(stopped);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

TEST(CstSimulation, LossesAreCountedAndRepaired) {
  core::SsrMinRing ring(5, 6);
  NetworkParams p = quiet_net(11);
  p.loss_probability = 0.3;
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), p);
  const CoverageStats stats = sim.run(400.0);
  EXPECT_GT(stats.losses, 0u);
  // Despite 30% loss the refresh timer keeps the system making progress.
  EXPECT_GT(stats.rule_executions, 0u);
  bool advanced = false;
  for (const auto& s : sim.global_config()) {
    if (s.x != 0) advanced = true;
  }
  EXPECT_TRUE(advanced);
}

TEST(CstSimulation, DuplicationIsATransientFaultAtWorst) {
  // Message duplication (paper §2.2's fault list) can re-deliver an OLD
  // state after a newer one — a cache regression. Self-stabilization must
  // absorb it: the run keeps making progress and coverage stays near 1
  // (brief zero windows are possible exactly because a regression is a
  // transient fault).
  core::SsrMinRing ring(5, 6);
  NetworkParams p = quiet_net(21);
  p.duplicate_probability = 0.3;
  auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0), p);
  const CoverageStats stats = sim.run(3000.0);
  EXPECT_GT(stats.rule_executions, 100u);
  EXPECT_GT(stats.coverage(), 0.95);
  // And the system still stabilizes to legitimate + coherent afterwards.
  bool settled = false;
  auto stop = [&ring](const CstSimulation<core::SsrMinRing>& s) {
    return s.coherent() && core::is_legitimate(ring, s.global_config());
  };
  sim.run_until(stop, 5000.0, &settled);
  EXPECT_TRUE(settled);
}

TEST(CstSimulation, DuplicateProbabilityValidated) {
  NetworkParams p = quiet_net();
  p.duplicate_probability = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(CstSimulation, DeterministicForFixedSeed) {
  core::SsrMinRing ring(5, 6);
  auto run_once = [&ring](std::uint64_t seed) {
    auto sim = make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                               quiet_net(seed));
    sim.run(200.0);
    return sim.global_config();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(CstSimulation, RejectsSizeMismatch) {
  core::SsrMinRing ring(5, 6);
  EXPECT_THROW(
      make_ssrmin_cst(ring, core::SsrConfig(4), quiet_net()),
      std::invalid_argument);
}

}  // namespace
}  // namespace ssr::msgpass
