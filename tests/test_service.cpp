// Tests for the deployment-facing DutyService API.
#include "inclusion/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace ssr::incl {
namespace {

using namespace std::chrono_literals;

DutyServiceParams small_params(std::uint64_t seed = 1) {
  DutyServiceParams p;
  p.node_count = 4;
  p.runtime.refresh_interval = 500us;
  p.runtime.seed = seed;
  return p;
}

TEST(DutyService, ParamsValidation) {
  DutyServiceParams p = small_params();
  EXPECT_NO_THROW(p.validate());
  p.node_count = 2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(DutyService, CallbacksFireInPairs) {
  std::atomic<int> starts{0};
  std::atomic<int> stops{0};
  DutyService service(small_params(3), [&](std::size_t, bool on) {
    (on ? starts : stops).fetch_add(1);
  });
  service.start();
  std::this_thread::sleep_for(300ms);
  service.stop();
  EXPECT_GT(starts.load(), 5);
  // Starts and stops interleave; they can differ by at most the number of
  // nodes (open duty periods at shutdown).
  EXPECT_LE(std::abs(starts.load() - stops.load()), 4);
}

TEST(DutyService, DutyIsSharedAcrossNodes) {
  DutyService service(small_params(5), nullptr);
  service.start();
  std::this_thread::sleep_for(400ms);
  service.stop();
  const DutyStats stats = service.stats();
  ASSERT_EQ(stats.duty_seconds.size(), 4u);
  double total = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(stats.duty_seconds[i], 0.0) << "node " << i << " never served";
    EXPECT_GT(stats.activations[i], 0u);
    total += stats.duty_seconds[i];
  }
  // Total duty time is between 1x and 2x wall time (1..2 holders).
  EXPECT_GT(total, 0.3);
  EXPECT_LT(total, 1.2);
  EXPECT_GT(stats.total_activations, 10u);
}

TEST(DutyService, CoverageNeverZero) {
  DutyService service(small_params(7), nullptr);
  service.start();
  const auto report = service.observe(300ms, 200us);
  service.stop();
  EXPECT_GT(report.consistent_samples, 50u);
  EXPECT_EQ(report.zero_holder_samples, 0u);
  EXPECT_GE(report.min_holders, 1u);
  EXPECT_LE(report.max_holders, 2u);
}

TEST(DutyService, SurvivesCorruption) {
  DutyService service(small_params(9), nullptr);
  service.start();
  std::this_thread::sleep_for(100ms);
  service.corrupt(2);
  std::this_thread::sleep_for(200ms);
  const DutyStats stats = service.stats();
  service.stop();
  // The service kept running and duty kept accumulating after the fault.
  EXPECT_GT(stats.total_activations, 5u);
  EXPECT_THROW(service.corrupt(9), std::invalid_argument);
}

TEST(DutyService, StatsSnapshotIncludesOpenPeriods) {
  DutyService service(small_params(11), nullptr);
  service.start();
  std::this_thread::sleep_for(150ms);
  const DutyStats mid = service.stats();
  // Someone is on duty right now (graceful handover guarantees >= 1).
  EXPECT_GE(mid.currently_active, 1u);
  EXPECT_LE(mid.currently_active, 2u);
  service.stop();
  const DutyStats fin = service.stats();
  EXPECT_EQ(fin.currently_active, 0u);  // all periods closed at stop
}

TEST(DutyService, ObserveRequiresRunning) {
  DutyService service(small_params(), nullptr);
  EXPECT_THROW(service.observe(10ms, 1ms), std::invalid_argument);
}

}  // namespace
}  // namespace ssr::incl
