// Rule-level unit tests for SSRmin (paper Algorithm 3). The enabled-rule
// table is checked exhaustively against an independent transcription of the
// guards, covering every <rts.tra> window pattern x both guard values —
// i.e. the full Figure 3 "possible rules" table.
#include "core/ssrmin.hpp"

#include <gtest/gtest.h>

#include "stabilizing/protocol.hpp"

namespace ssr::core {
namespace {

SsrState make_state(std::uint32_t x, int rts, int tra) {
  return SsrState{x, rts != 0, tra != 0};
}

/// Independent transcription of Algorithm 3's guards (priority 1 > 2 > 3 >
/// 4 > 5), written from the paper text rather than from the implementation.
int expected_rule(bool g, std::uint32_t pf, std::uint32_t sf,
                  std::uint32_t cf) {
  if (g) {
    if (sf == kFlags00 || sf == kFlags01 || sf == kFlags11) return 1;
    if (sf == kFlags10 && cf == kFlags01) return 2;
    if (!(pf == kFlags00 && sf == kFlags10 && cf == kFlags00)) return 4;
    return stab::kDisabled;
  }
  if (pf == kFlags10 &&
      (sf == kFlags00 || sf == kFlags10 || sf == kFlags11))
    return 3;
  if (pf == kFlags10 && sf == kFlags01) return stab::kDisabled;
  if (sf == kFlags00) return stab::kDisabled;
  return 5;
}

SsrState with_flags(std::uint32_t x, std::uint32_t flags) {
  return SsrState{x, (flags & 2u) != 0, (flags & 1u) != 0};
}

class RuleTable
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(RuleTable, MatchesPaperGuards) {
  const auto [pf_i, sf_i, cf_i, g_i] = GetParam();
  const auto pf = static_cast<std::uint32_t>(pf_i);
  const auto sf = static_cast<std::uint32_t>(sf_i);
  const auto cf = static_cast<std::uint32_t>(cf_i);
  const bool g = g_i != 0;

  SsrMinRing ring(5, 6);
  // Use middle process P2: guard is x_self != x_pred. Pick x values to set
  // the guard as requested.
  const std::uint32_t x_pred = 1;
  const std::uint32_t x_self = g ? 2 : 1;
  const SsrState pred = with_flags(x_pred, pf);
  const SsrState self = with_flags(x_self, sf);
  const SsrState succ = with_flags(3, cf);
  ASSERT_EQ(ring.guard(2, self, pred), g);
  EXPECT_EQ(ring.enabled_rule(2, self, pred, succ),
            expected_rule(g, pf, sf, cf))
      << "pred=" << pf << " self=" << sf << " succ=" << cf << " G=" << g;
}

TEST_P(RuleTable, MatchesPaperGuardsForBottomProcess) {
  const auto [pf_i, sf_i, cf_i, g_i] = GetParam();
  const auto pf = static_cast<std::uint32_t>(pf_i);
  const auto sf = static_cast<std::uint32_t>(sf_i);
  const auto cf = static_cast<std::uint32_t>(cf_i);
  const bool g = g_i != 0;

  SsrMinRing ring(5, 6);
  // Bottom process P0: guard is x_self == x_pred.
  const std::uint32_t x_pred = 1;
  const std::uint32_t x_self = g ? 1 : 2;
  const SsrState pred = with_flags(x_pred, pf);
  const SsrState self = with_flags(x_self, sf);
  const SsrState succ = with_flags(3, cf);
  ASSERT_EQ(ring.guard(0, self, pred), g);
  EXPECT_EQ(ring.enabled_rule(0, self, pred, succ),
            expected_rule(g, pf, sf, cf));
}

INSTANTIATE_TEST_SUITE_P(AllWindows, RuleTable,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4),
                                            ::testing::Range(0, 4),
                                            ::testing::Range(0, 2)));

TEST(SsrMinRing, ConstructionConstraints) {
  EXPECT_THROW(SsrMinRing(2, 5), std::invalid_argument);  // n >= 3
  EXPECT_THROW(SsrMinRing(5, 5), std::invalid_argument);  // K > n
  EXPECT_NO_THROW(SsrMinRing(3, 4));
  EXPECT_EQ(SsrMinRing(4, 7).states_per_process(), 28u);
}

TEST(Rule1, SetsReadyToSend) {
  SsrMinRing ring(5, 6);
  // P0 with all-equal x and <0.1>: the canonical Figure 4 step 1.
  const SsrState self = make_state(3, 0, 1);
  const SsrState pred = make_state(3, 0, 0);
  const SsrState succ = make_state(3, 0, 0);
  ASSERT_EQ(ring.enabled_rule(0, self, pred, succ), 1);
  const SsrState next = ring.apply(0, 1, self, pred, succ);
  EXPECT_EQ(next, make_state(3, 1, 0));  // x unchanged, <rts.tra> := <1.0>
}

TEST(Rule2, SendsPrimaryAndRunsDijkstraCommand) {
  SsrMinRing ring(5, 6);
  // Figure 4 step 3: P0 = 3.1.0, P1 = 3.0.1.
  const SsrState self = make_state(3, 1, 0);
  const SsrState pred = make_state(3, 0, 0);  // P4
  const SsrState succ = make_state(3, 0, 1);  // P1
  ASSERT_EQ(ring.enabled_rule(0, self, pred, succ), 2);
  const SsrState next = ring.apply(0, 2, self, pred, succ);
  EXPECT_EQ(next, make_state(4, 0, 0));  // bottom increments x
}

TEST(Rule2, NonBottomCopiesPredecessor) {
  SsrMinRing ring(5, 6);
  const SsrState self = make_state(3, 1, 0);
  const SsrState pred = make_state(4, 0, 0);
  const SsrState succ = make_state(3, 0, 1);
  ASSERT_EQ(ring.enabled_rule(2, self, pred, succ), 2);
  const SsrState next = ring.apply(2, 2, self, pred, succ);
  EXPECT_EQ(next, make_state(4, 0, 0));  // copies pred.x
}

TEST(Rule3, ReceivesSecondaryToken) {
  SsrMinRing ring(5, 6);
  // Figure 4 step 2: P1 = 3.0.0 with pred P0 = 3.1.0.
  const SsrState self = make_state(3, 0, 0);
  const SsrState pred = make_state(3, 1, 0);
  const SsrState succ = make_state(3, 0, 0);
  ASSERT_EQ(ring.enabled_rule(1, self, pred, succ), 3);
  const SsrState next = ring.apply(1, 3, self, pred, succ);
  EXPECT_EQ(next, make_state(3, 0, 1));
}

TEST(Rule4, FixesInconsistentStateWhenGuardTrue) {
  SsrMinRing ring(5, 6);
  // P2 with G true, self <1.0> but predecessor also <1.0>: inconsistent.
  const SsrState self = make_state(3, 1, 0);
  const SsrState pred = make_state(4, 1, 0);
  const SsrState succ = make_state(3, 0, 0);
  ASSERT_EQ(ring.enabled_rule(2, self, pred, succ), 4);
  const SsrState next = ring.apply(2, 4, self, pred, succ);
  EXPECT_EQ(next, make_state(4, 0, 0));  // resets flags AND runs C_i
}

TEST(Rule4, NotEnabledInLegitimateWaitPattern) {
  SsrMinRing ring(5, 6);
  // <0.0, 1.0, 0.0> with G true: P_i is just waiting for its successor to
  // acknowledge; no rule fires.
  const SsrState self = make_state(3, 1, 0);
  const SsrState pred = make_state(4, 0, 0);
  const SsrState succ = make_state(3, 0, 0);
  EXPECT_EQ(ring.enabled_rule(2, self, pred, succ), stab::kDisabled);
}

TEST(Rule5, FixesInconsistentStateWhenGuardFalse) {
  SsrMinRing ring(5, 6);
  // P2 with G false and a stray <0.1> while pred is <0.0>: inconsistent.
  const SsrState self = make_state(3, 0, 1);
  const SsrState pred = make_state(3, 0, 0);
  const SsrState succ = make_state(3, 0, 0);
  ASSERT_EQ(ring.enabled_rule(2, self, pred, succ), 5);
  const SsrState next = ring.apply(2, 5, self, pred, succ);
  EXPECT_EQ(next, make_state(3, 0, 0));  // resets flags, x untouched
}

TEST(Rule5, HolderPatternIsStable) {
  SsrMinRing ring(5, 6);
  // <1.0, 0.1> with G false: the legitimate secondary-holder pattern.
  const SsrState self = make_state(3, 0, 1);
  const SsrState pred = make_state(3, 1, 0);
  const SsrState succ = make_state(3, 0, 0);
  EXPECT_EQ(ring.enabled_rule(2, self, pred, succ), stab::kDisabled);
}

TEST(Apply, RejectsMismatchedRuleId) {
  SsrMinRing ring(5, 6);
  const SsrState self = make_state(3, 0, 1);
  const SsrState pred = make_state(3, 0, 0);
  const SsrState succ = make_state(3, 0, 0);
  ASSERT_EQ(ring.enabled_rule(0, self, pred, succ), 1);
  EXPECT_THROW(ring.apply(0, 2, self, pred, succ), std::invalid_argument);
  EXPECT_THROW(ring.apply(0, 99, self, pred, succ), std::invalid_argument);
}

TEST(Rule11, ClearsDoubleFlag) {
  SsrMinRing ring(5, 6);
  // <1.1> with G true is repaired by Rule 1 (priority over Rule 4).
  const SsrState self = make_state(2, 1, 1);
  const SsrState pred = make_state(3, 0, 0);
  const SsrState succ = make_state(2, 0, 0);
  ASSERT_EQ(ring.enabled_rule(2, self, pred, succ), 1);
  EXPECT_EQ(ring.apply(2, 1, self, pred, succ), make_state(2, 1, 0));
}

TEST(StateCodec, RoundTrips) {
  const std::uint32_t K = 6;
  for (std::uint32_t code = 0; code < 4 * K; ++code) {
    const SsrState s = decode_state(code, K);
    EXPECT_EQ(encode_state(s, K), code);
  }
  EXPECT_THROW(decode_state(4 * K, K), std::invalid_argument);
  EXPECT_THROW(encode_state(make_state(K, 0, 0), K), std::invalid_argument);
}

TEST(StateFormat, PaperNotation) {
  EXPECT_EQ(format_state(make_state(3, 0, 1)), "3.0.1");
  EXPECT_EQ(format_state(make_state(12, 1, 0)), "12.1.0");
  EXPECT_EQ(format_state(make_state(0, 1, 1)), "0.1.1");
}

}  // namespace
}  // namespace ssr::core
