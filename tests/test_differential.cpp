// Differential tests: two independent implementations of the same
// semantics must agree.
//
//  * engine-vs-checker: stab::Engine::step and the model checker's
//    successor enumeration implement composite atomicity independently;
//    every engine step from a random configuration must appear among the
//    checker's successors, and single-process steps must match exactly;
//  * simulator-vs-engine: with zero loss and coherent caches, one CST rule
//    execution equals one central-daemon engine step on the same state;
//  * Markov-vs-heights: expected hitting times are bounded above by the
//    worst-case heights from every configuration.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/legitimacy.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "verify/checkers.hpp"
#include "verify/markov.hpp"

namespace ssr {
namespace {

TEST(Differential, EngineStepsAreCheckerSuccessors) {
  const std::size_t n = 3;
  const std::uint32_t K = 4;
  auto checker = verify::make_ssrmin_checker(n, K);
  const core::SsrMinRing ring(n, K);
  Rng rng(2025);
  for (int trial = 0; trial < 300; ++trial) {
    const core::SsrConfig config = core::random_config(ring, rng);
    const auto succs = checker.successor_codes(config);
    ASSERT_FALSE(succs.empty()) << "deadlock (contradicts Lemma 4)";

    stab::Engine<core::SsrMinRing> engine(ring, config);
    // Random non-empty subset of the enabled processes.
    const auto enabled = engine.enabled_indices();
    std::vector<std::size_t> selected;
    for (std::size_t id : enabled) {
      if (rng.bernoulli(0.6)) selected.push_back(id);
    }
    if (selected.empty()) selected.push_back(enabled[rng.below(enabled.size())]);
    engine.step(selected);
    const std::uint64_t result = checker.codec().encode(engine.config());
    EXPECT_NE(std::find(succs.begin(), succs.end(), result), succs.end())
        << "engine produced a configuration the checker does not list";
  }
}

TEST(Differential, SingleProcessStepMatchesApply) {
  const core::SsrMinRing ring(4, 5);
  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    const core::SsrConfig config = core::random_config(ring, rng);
    stab::Engine<core::SsrMinRing> engine(ring, config);
    const auto enabled = engine.enabled_indices();
    ASSERT_FALSE(enabled.empty());
    const std::size_t i = enabled[rng.below(enabled.size())];
    const std::size_t n = config.size();
    const int rule = ring.enabled_rule(i, config[i],
                                       config[stab::pred_index(i, n)],
                                       config[stab::succ_index(i, n)]);
    const core::SsrState expected =
        ring.apply(i, rule, config[i], config[stab::pred_index(i, n)],
                   config[stab::succ_index(i, n)]);
    const std::vector<std::size_t> sel{i};
    engine.step(sel);
    EXPECT_EQ(engine.config()[i], expected);
    // Everyone else untouched.
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) {
        EXPECT_EQ(engine.config()[j], config[j]);
      }
    }
  }
}

TEST(Differential, HittingTimesBoundedByWorstCaseEverywhere) {
  auto checker = verify::make_ssrmin_checker(3, 4);
  verify::CheckOptions options;
  options.keep_heights = true;
  const auto report = checker.run(options);
  ASSERT_TRUE(report.all_ok());
  const auto hit = verify::expected_hitting_times(checker);
  ASSERT_TRUE(hit.converged);
  ASSERT_EQ(hit.expected_steps.size(), report.heights.size());
  // The expectation under the *random central* daemon is bounded by the
  // worst case over ALL daemons... with one subtlety: heights allow larger
  // subsets per step, which can only *shorten* executions, so the valid
  // universal relation is: expected <= worst-case height computed on the
  // same (central) chain. We check the weaker but daemon-correct property:
  // E[c] <= height(c) fails only if some single-process path is longer
  // than the adversarial distributed worst case — count violations; there
  // must be none, because singleton selections are available to the
  // distributed adversary too.
  for (std::size_t c = 0; c < hit.expected_steps.size(); ++c) {
    EXPECT_LE(hit.expected_steps[c],
              static_cast<double>(report.heights[c]) + 1e-9)
        << "config " << c;
  }
}

TEST(Differential, GuardMatchesTokenPredicate) {
  // The primary-token predicate must coincide with Dijkstra enabledness
  // (paper Algorithm 1 lines 6/10) on every window.
  const core::SsrMinRing ring(5, 6);
  Rng rng(31);
  for (int trial = 0; trial < 1000; ++trial) {
    core::SsrState self;
    core::SsrState pred;
    self.x = static_cast<std::uint32_t>(rng.below(6));
    pred.x = static_cast<std::uint32_t>(rng.below(6));
    const std::size_t i = rng.below(5);
    EXPECT_EQ(ring.holds_primary(i, self, pred),
              dijkstra::kstate_guard(i, self.x, pred.x));
  }
}

}  // namespace
}  // namespace ssr
