// Tests for the exact expected-hitting-time (average-case convergence)
// analysis under the uniform-random central daemon.
#include "verify/markov.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "verify/checkers.hpp"

namespace ssr::verify {
namespace {

TEST(Markov, ConvergesAndRespectsStructure) {
  auto checker = make_ssrmin_checker(3, 4);
  const HittingTimeReport r = expected_hitting_times(checker);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.expected_steps.size(), 4096u);
  // Legitimate configurations have expectation 0; everything else > 0.
  core::SsrMinRing ring(3, 4);
  for (std::uint64_t c = 0; c < 4096; ++c) {
    const auto config = checker.codec().decode(c);
    if (core::is_legitimate(ring, config)) {
      EXPECT_DOUBLE_EQ(r.expected_steps[c], 0.0);
    } else {
      EXPECT_GT(r.expected_steps[c], 0.0);
    }
  }
  EXPECT_GT(r.mean_expected, 0.0);
  EXPECT_GE(r.max_expected, r.mean_expected);
}

TEST(Markov, ExpectationBoundedByWorstCase) {
  auto checker = make_ssrmin_checker(3, 4);
  CheckOptions options;
  options.keep_heights = true;
  const CheckReport check = checker.run(options);
  const HittingTimeReport r = expected_hitting_times(checker);
  ASSERT_TRUE(r.converged);
  // The average-case expectation from any configuration can exceed the
  // *distributed-daemon* worst case? No: heights include larger selection
  // sets, but the central daemon's choices are a subset... The honest
  // relation that must hold: from each configuration, the expectation is
  // at least 1 if illegitimate, and the global max expectation is finite
  // and of the same order as the worst case.
  EXPECT_GE(r.max_expected, 1.0);
  EXPECT_LT(r.max_expected, 10.0 * static_cast<double>(check.worst_case_steps));
}

TEST(Markov, MatchesMonteCarloEstimate) {
  // Cross-validate the linear-system solution against direct simulation
  // from the worst starting configuration.
  auto checker = make_ssrmin_checker(3, 4);
  const HittingTimeReport r = expected_hitting_times(checker);
  ASSERT_TRUE(r.converged);
  const auto start = checker.codec().decode(r.argmax);
  core::SsrMinRing ring(3, 4);
  Rng rng(12345);
  double total = 0.0;
  const int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    stab::Engine<core::SsrMinRing> engine(ring, start);
    stab::CentralRandomDaemon daemon{rng.split()};
    auto legit = [&ring](const core::SsrConfig& c) {
      return core::is_legitimate(ring, c);
    };
    const auto result = stab::run_until(engine, daemon, legit, 100000);
    ASSERT_TRUE(result.reached);
    total += static_cast<double>(result.steps);
  }
  const double empirical = total / kTrials;
  // 4000 trials: the mean should land within a few percent.
  EXPECT_NEAR(empirical, r.max_expected, 0.08 * r.max_expected + 0.5);
}

TEST(Markov, DijkstraChainSolvesToo) {
  auto checker = make_kstate_checker(4, 5);
  const HittingTimeReport r = expected_hitting_times(checker);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.max_expected, 0.0);
  EXPECT_GT(r.iterations, 0u);
}

TEST(Markov, MeanBelowMax) {
  auto checker = make_ssrmin_checker(3, 5);
  const HittingTimeReport r = expected_hitting_times(checker);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.mean_expected, r.max_expected);
}

}  // namespace
}  // namespace ssr::verify
