// Tests for the synchronous-round execution model ([17]-style transformed
// execution with randomized rule firing and lossy broadcast).
#include "msgpass/rounds.hpp"

#include <gtest/gtest.h>

#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"

namespace ssr::msgpass {
namespace {

TEST(RoundParams, Validation) {
  RoundParams p;
  EXPECT_NO_THROW(p.validate());
  p.loss = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RoundParams{};
  p.exec_probability = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Rounds, LosslessFullExecutionMatchesSynchronousDaemon) {
  // With loss = 0 and exec probability 1, each round is exactly one
  // synchronous-daemon step of the state-reading model: from the canonical
  // legitimate start the configuration after 3n rounds has every x
  // incremented.
  const std::size_t n = 5;
  core::SsrMinRing ring(n, 6);
  RoundParams p;
  auto sim = make_ssrmin_rounds(ring, core::canonical_legitimate(ring, 0), p);
  for (std::size_t t = 0; t < 3 * n; ++t) {
    EXPECT_EQ(sim.step(), 1u);  // one enabled process in Lambda
  }
  EXPECT_EQ(sim.global_config(), core::canonical_legitimate(ring, 1));
  // Caches lag the last execution by one broadcast phase; one more
  // broadcast-only observation point is after the next round's phase 1 —
  // coherence is an intra-round notion here, checked in the loss test.
}

TEST(Rounds, HolderCountStaysInBandFromLegitStart) {
  const std::size_t n = 6;
  core::SsrMinRing ring(n, 7);
  RoundParams p;
  p.exec_probability = 0.7;
  p.seed = 5;
  auto sim = make_ssrmin_rounds(ring, core::canonical_legitimate(ring, 0), p);
  for (int t = 0; t < 500; ++t) {
    const std::size_t holders = sim.holder_count();
    ASSERT_GE(holders, 1u) << "round " << t;
    ASSERT_LE(holders, 2u) << "round " << t;
    sim.step();
  }
}

class RoundsConvergence
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RoundsConvergence, ArbitraryStartStabilizes) {
  const auto [loss, exec_p] = GetParam();
  const std::size_t n = 5;
  const std::uint32_t K = 6;
  core::SsrMinRing ring(n, K);
  RoundParams p;
  p.loss = loss;
  p.exec_probability = exec_p;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    p.seed = seed;
    Rng rng(seed + 100);
    auto sim = make_ssrmin_rounds(ring, core::random_config(ring, rng), p);
    sim.randomize_caches([K](Rng& r) {
      core::SsrState s;
      s.x = static_cast<std::uint32_t>(r.below(K));
      s.rts = r.bernoulli(0.5);
      s.tra = r.bernoulli(0.5);
      return s;
    });
    auto legit = [&ring](const core::SsrConfig& c) {
      return core::is_legitimate(ring, c);
    };
    const auto rounds = sim.run_until(legit, 100000);
    EXPECT_TRUE(rounds.has_value())
        << "loss=" << loss << " exec_p=" << exec_p << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundsConvergence,
    ::testing::Values(std::make_tuple(0.0, 1.0), std::make_tuple(0.0, 0.5),
                      std::make_tuple(0.2, 1.0), std::make_tuple(0.2, 0.5),
                      std::make_tuple(0.4, 0.8)));

TEST(Rounds, DijkstraConvergesToo) {
  const std::size_t n = 6;
  dijkstra::KStateRing ring(n, 7);
  RoundParams p;
  p.loss = 0.1;
  p.exec_probability = 0.8;
  p.seed = 9;
  Rng rng(17);
  auto sim = make_kstate_rounds(ring, dijkstra::random_config(ring, rng), p);
  auto legit = [&ring](const dijkstra::KStateConfig& c) {
    return dijkstra::is_legitimate(ring, c);
  };
  EXPECT_TRUE(sim.run_until(legit, 100000).has_value());
}

TEST(Rounds, RunUntilAlreadySatisfiedIsZeroRounds) {
  core::SsrMinRing ring(4, 5);
  RoundParams p;
  auto sim = make_ssrmin_rounds(ring, core::canonical_legitimate(ring, 2), p);
  auto legit = [&ring](const core::SsrConfig& c) {
    return core::is_legitimate(ring, c);
  };
  const auto rounds = sim.run_until(legit, 10);
  ASSERT_TRUE(rounds.has_value());
  EXPECT_EQ(*rounds, 0u);
}

TEST(Rounds, LossyBroadcastBreaksCoherenceTemporarily) {
  core::SsrMinRing ring(5, 6);
  RoundParams p;
  p.loss = 0.5;
  p.seed = 3;
  auto sim = make_ssrmin_rounds(ring, core::canonical_legitimate(ring, 0), p);
  int incoherent = 0;
  for (int t = 0; t < 200; ++t) {
    sim.step();
    if (!sim.coherent()) ++incoherent;
  }
  EXPECT_GT(incoherent, 0);
}

TEST(Rounds, CacheAccessorsTrackNeighbors) {
  core::SsrMinRing ring(4, 5);
  core::SsrConfig init(4);
  for (std::size_t i = 0; i < 4; ++i) init[i].x = static_cast<std::uint32_t>(i);
  RoundParams p;
  auto sim = make_ssrmin_rounds(ring, init, p);
  EXPECT_EQ(sim.cache_pred(0).x, 3u);
  EXPECT_EQ(sim.cache_succ(0).x, 1u);
  EXPECT_EQ(sim.cache_pred(2).x, 1u);
  EXPECT_TRUE(sim.coherent());
  sim.randomize_caches([](Rng& r) {
    core::SsrState s;
    s.x = static_cast<std::uint32_t>(r.below(5));
    s.rts = r.bernoulli(0.5);
    s.tra = r.bernoulli(0.5);
    return s;
  });
  // One lossless round's broadcast phase restores coherence of the caches
  // used in phase 2... after the round completes, caches reflect the
  // pre-round states, so coherence holds iff nothing fired. Just check
  // the accessors are live.
  sim.step();
  EXPECT_EQ(sim.rounds(), 1u);
}

TEST(Rounds, SizeMismatchRejected) {
  core::SsrMinRing ring(5, 6);
  RoundParams p;
  EXPECT_THROW(make_ssrmin_rounds(ring, core::SsrConfig(3), p),
               std::invalid_argument);
}

}  // namespace
}  // namespace ssr::msgpass
