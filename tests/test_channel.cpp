// Tests for the bounded MPSC channel used by the threaded runtime.
#include "runtime/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ssr::runtime {
namespace {

using namespace std::chrono_literals;

TEST(Channel, PushPopFifo) {
  Channel<int> ch(8);
  EXPECT_TRUE(ch.push(1));
  EXPECT_TRUE(ch.push(2));
  EXPECT_TRUE(ch.push(3));
  EXPECT_EQ(ch.pop(1ms), 1);
  EXPECT_EQ(ch.pop(1ms), 2);
  EXPECT_EQ(ch.pop(1ms), 3);
}

TEST(Channel, PopTimesOutWhenEmpty) {
  Channel<int> ch(4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.pop(20ms), std::nullopt);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 15ms);
}

TEST(Channel, OverflowDropsOldest) {
  Channel<int> ch(3);
  for (int i = 1; i <= 5; ++i) ch.push(i);
  // 1 and 2 were evicted; the newest three remain in order.
  EXPECT_EQ(ch.pop(1ms), 3);
  EXPECT_EQ(ch.pop(1ms), 4);
  EXPECT_EQ(ch.pop(1ms), 5);
  EXPECT_EQ(ch.pop(1ms), std::nullopt);
}

TEST(Channel, CloseFailsFurtherPushes) {
  Channel<int> ch(4);
  ch.push(1);
  ch.close();
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.push(2));
  // Already-queued items drain, then nullopt.
  EXPECT_EQ(ch.pop(1ms), 1);
  EXPECT_EQ(ch.pop(1ms), std::nullopt);
}

TEST(Channel, CloseWakesBlockedPopper) {
  Channel<int> ch(4);
  std::atomic<bool> woke{false};
  std::thread popper([&] {
    // A long timeout that close() must cut short.
    ch.pop(5s);
    woke.store(true);
  });
  std::this_thread::sleep_for(20ms);
  ch.close();
  popper.join();
  EXPECT_TRUE(woke.load());
}

TEST(Channel, RejectsZeroCapacity) {
  EXPECT_THROW(Channel<int>(0), std::invalid_argument);
}

TEST(Channel, SizeReflectsQueue) {
  Channel<int> ch(4);
  EXPECT_EQ(ch.size(), 0u);
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(ch.size(), 2u);
  ch.pop(1ms);
  EXPECT_EQ(ch.size(), 1u);
}

TEST(Channel, MultipleProducersSingleConsumer) {
  // Capacity covers the full volume: nothing may be dropped, every message
  // must arrive exactly once even with concurrent producers.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  Channel<int> ch(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.push(p * kPerProducer + i);
    });
  }
  int received = 0;
  std::vector<int> per_producer(kProducers, 0);
  while (received < kProducers * kPerProducer) {
    const auto v = ch.pop(500ms);
    ASSERT_TRUE(v.has_value()) << "lost messages under concurrency";
    ++per_producer[*v / kPerProducer];
    ++received;
  }
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(per_producer[p], kPerProducer);
  for (auto& t : producers) t.join();
}

TEST(Channel, CloseWhilePushRace) {
  // close() racing concurrent producers: every push must return a definite
  // verdict (accepted before close, or refused after), with no crash, no
  // deadlock, and no item admitted after pops started draining nullopt.
  for (int round = 0; round < 20; ++round) {
    Channel<int> ch(1024);
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&ch, &accepted] {
        for (int i = 0; i < 200; ++i) {
          if (ch.push(i)) accepted.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    ch.close();
    for (auto& t : producers) t.join();
    int drained = 0;
    while (ch.pop(1ms).has_value()) ++drained;
    EXPECT_EQ(drained, accepted.load())
        << "an accepted push vanished or a refused push leaked in";
    EXPECT_FALSE(ch.push(99));  // stays closed
  }
}

TEST(Channel, CloseWhilePopRace) {
  // close() racing a consumer blocked in pop(): the consumer must wake
  // promptly with either a queued item or nullopt — never hang for the
  // full timeout, never observe a torn value.
  for (int round = 0; round < 20; ++round) {
    Channel<int> ch(8);
    std::atomic<bool> done{false};
    std::thread consumer([&ch, &done] {
      while (ch.pop(5s).has_value()) {
      }
      done.store(true);
    });
    ch.push(1);
    ch.push(2);
    ch.close();
    consumer.join();
    EXPECT_TRUE(done.load());
  }
}

TEST(Channel, MoveOnlyPayload) {
  Channel<std::unique_ptr<int>> ch(2);
  ch.push(std::make_unique<int>(42));
  auto v = ch.pop(1ms);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

}  // namespace
}  // namespace ssr::runtime
