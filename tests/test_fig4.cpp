// Exact reproduction of the paper's Figure 4: the 16-step execution of
// SSRmin with five processes starting from (3.0.1, 3.0.0, 3.0.0, 3.0.0,
// 3.0.0). Every cell — local state, 'P'/'S' token marks and the "/g"
// enabled-rule annotation — must match the published table character for
// character. In legitimate configurations exactly one process is enabled,
// so the trace is daemon-independent.
#include <gtest/gtest.h>

#include <array>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/engine.hpp"

namespace ssr::core {
namespace {

// Transcribed from the paper, Figure 4.
constexpr std::array<std::array<const char*, 5>, 16> kFigure4 = {{
    {"3.0.1PS/1", "3.0.0", "3.0.0", "3.0.0", "3.0.0"},
    {"3.1.0PS", "3.0.0/3", "3.0.0", "3.0.0", "3.0.0"},
    {"3.1.0P/2", "3.0.1S", "3.0.0", "3.0.0", "3.0.0"},
    {"4.0.0", "3.0.1PS/1", "3.0.0", "3.0.0", "3.0.0"},
    {"4.0.0", "3.1.0PS", "3.0.0/3", "3.0.0", "3.0.0"},
    {"4.0.0", "3.1.0P/2", "3.0.1S", "3.0.0", "3.0.0"},
    {"4.0.0", "4.0.0", "3.0.1PS/1", "3.0.0", "3.0.0"},
    {"4.0.0", "4.0.0", "3.1.0PS", "3.0.0/3", "3.0.0"},
    {"4.0.0", "4.0.0", "3.1.0P/2", "3.0.1S", "3.0.0"},
    {"4.0.0", "4.0.0", "4.0.0", "3.0.1PS/1", "3.0.0"},
    {"4.0.0", "4.0.0", "4.0.0", "3.1.0PS", "3.0.0/3"},
    {"4.0.0", "4.0.0", "4.0.0", "3.1.0P/2", "3.0.1S"},
    {"4.0.0", "4.0.0", "4.0.0", "4.0.0", "3.0.1PS/1"},
    {"4.0.0/3", "4.0.0", "4.0.0", "4.0.0", "3.1.0PS"},
    {"4.0.1S", "4.0.0", "4.0.0", "4.0.0", "3.1.0P/2"},
    {"4.0.1PS/1", "4.0.0", "4.0.0", "4.0.0", "4.0.0"},
}};

/// Renders the Figure 4 cell for process i: "x.rts.tra" + token marks +
/// "/rule" when the process is enabled.
std::string render_cell(const SsrMinRing& ring,
                        const stab::Engine<SsrMinRing>& engine,
                        std::size_t i) {
  const auto& config = engine.config();
  const std::size_t n = config.size();
  std::string cell = format_state(config[i]);
  if (ring.holds_primary(i, config[i], config[stab::pred_index(i, n)]))
    cell += 'P';
  if (ring.holds_secondary(config[i], config[stab::succ_index(i, n)]))
    cell += 'S';
  const int rule = engine.enabled_rule(i);
  if (rule != stab::kDisabled) cell += "/" + std::to_string(rule);
  return cell;
}

TEST(Figure4, ExactTraceReproduction) {
  const SsrMinRing ring(5, 6);
  stab::Engine<SsrMinRing> engine(ring, canonical_legitimate(ring, 3));
  for (std::size_t step = 0; step < kFigure4.size(); ++step) {
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(render_cell(ring, engine, i), kFigure4[step][i])
          << "step " << (step + 1) << ", process P" << i;
    }
    const auto enabled = engine.enabled_indices();
    ASSERT_EQ(enabled.size(), 1u) << "step " << (step + 1);
    engine.step(enabled);
  }
}

TEST(Figure4, EveryRowIsLegitimate) {
  const SsrMinRing ring(5, 6);
  stab::Engine<SsrMinRing> engine(ring, canonical_legitimate(ring, 3));
  for (std::size_t step = 0; step < kFigure4.size(); ++step) {
    ASSERT_TRUE(is_legitimate(ring, engine.config())) << "step " << step + 1;
    engine.step(engine.enabled_indices());
  }
}

TEST(Figure4, Step16MatchesStep1ShiftedByX) {
  // The figure's step 16 is step 1 with x advanced from 3 to 4: the cycle
  // repeats with period 3n = 15.
  const SsrMinRing ring(5, 6);
  stab::Engine<SsrMinRing> engine(ring, canonical_legitimate(ring, 3));
  for (int t = 0; t < 15; ++t) engine.step(engine.enabled_indices());
  EXPECT_EQ(engine.config(), canonical_legitimate(ring, 4));
}

}  // namespace
}  // namespace ssr::core
