// The deployment-facing API in ~40 lines: a DutyService runs the ring and
// calls you back when your node must start or stop the privileged work.
// Here the "work" is printing; in the paper's system it would be
// start/stop recording.
//
// Usage: ./examples/duty_service [nodes] [milliseconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "inclusion/service.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  using namespace std::chrono_literals;
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5;
  const int millis = argc > 2 ? std::atoi(argv[2]) : 400;

  incl::DutyServiceParams params;
  params.node_count = nodes;
  params.runtime.refresh_interval = 1ms;

  std::atomic<int> narrated{0};
  incl::DutyService service(params, [&](std::size_t node, bool on) {
    if (narrated.fetch_add(1) < 16) {
      std::printf("  node %zu %s duty\n", node, on ? "takes" : "leaves");
    }
  });

  std::printf("starting the duty service on %zu nodes...\n", nodes);
  service.start();
  // Inject a fault mid-run: the service self-stabilizes through it.
  std::this_thread::sleep_for(std::chrono::milliseconds(millis / 2));
  std::printf("  !! injecting a transient fault at node 1 !!\n");
  service.corrupt(1);
  const auto coverage = service.observe(
      std::chrono::milliseconds(millis / 2), 300us);
  service.stop();

  const incl::DutyStats stats = service.stats();
  std::printf("\n--- duty report ---\n");
  for (std::size_t i = 0; i < nodes; ++i) {
    std::printf("node %zu: %.1f ms on duty across %llu activations\n", i,
                1000.0 * stats.duty_seconds[i],
                static_cast<unsigned long long>(stats.activations[i]));
  }
  std::printf("coverage: %llu consistent samples, %llu with zero holders\n",
              static_cast<unsigned long long>(coverage.consistent_samples),
              static_cast<unsigned long long>(coverage.zero_holder_samples));
  return 0;
}
