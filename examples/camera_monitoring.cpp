// The paper's motivating application: a ring of battery-powered security
// cameras where at least one camera must be recording at every instant.
// Runs the same scenario under four policies and prints the trade-off
// between observation coverage and energy.
//
// Usage: ./examples/camera_monitoring [nodes] [duration]
#include <cstdlib>
#include <iostream>

#include "inclusion/camera.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const double duration = argc > 2 ? std::atof(argv[2]) : 3000.0;

  incl::CameraParams params;
  params.node_count = nodes;
  params.duration = duration;
  params.drain_rate = 1.0;      // recording cost
  params.idle_drain_rate = 0.05;  // standby cost
  params.harvest_rate = 0.30;   // solar panel income
  params.net.seed = 99;

  std::cout << "Camera ring: " << nodes << " nodes, " << duration
            << " ticks, recording drains " << params.drain_rate
            << "/tick, harvesting yields " << params.harvest_rate
            << "/tick\n\n";

  TextTable table({"policy", "coverage %", "blackout intervals",
                   "mean cameras on", "energy used", "min battery",
                   "duty fairness"});
  for (auto policy :
       {incl::CameraPolicy::kSsrMin, incl::CameraPolicy::kDijkstra,
        incl::CameraPolicy::kDualDijkstra, incl::CameraPolicy::kAllActive}) {
    const incl::CameraReport r = incl::run_camera(policy, params);
    table.row()
        .cell(incl::to_string(policy))
        .cell(100.0 * r.coverage, 3)
        .cell(r.blackout_intervals)
        .cell(r.mean_active, 2)
        .cell(r.energy_consumed, 0)
        .cell(r.min_battery, 1)
        .cell(r.duty_fairness, 3);
  }
  std::cout << table.render();
  std::cout << "\nssrmin keeps the scene covered 100% of the time with ~1-2 "
               "cameras on;\nthe plain token ring goes dark during every "
               "handover; all-on never sleeps\nand pays for it in energy.\n";
  return 0;
}
