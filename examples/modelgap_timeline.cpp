// Visual reproduction of the paper's Figures 11-13: token-holding
// timelines in the message-passing model. Rows are nodes, time flows
// right; '#' marks "this node holds a token (by its local view)", and the
// summary row shows '!' wherever NO node holds a token — the windows that
// make the naive schemes unusable for continuous monitoring — and '2'
// where two nodes overlap (the graceful handover).
//
// Usage: ./examples/modelgap_timeline [nodes] [columns]
#include <cstdlib>
#include <iostream>

#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"
#include "msgpass/timeline.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5;
  const std::size_t cols =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 96;
  const auto K = static_cast<std::uint32_t>(n + 1);

  msgpass::NetworkParams params;
  params.seed = 12;
  const double resolution = 0.5;
  const double duration = resolution * static_cast<double>(cols) + 5.0;

  {
    std::cout << "Figure 11 — Dijkstra's token ring under CST (token dies "
                 "in flight):\n";
    dijkstra::KStateRing ring(n, K);
    auto sim = msgpass::make_kstate_cst(ring, dijkstra::KStateConfig(n),
                                        params);
    msgpass::TimelineRecorder rec(n, resolution);
    rec.attach(sim);
    sim.run(duration);
    std::cout << rec.render(cols) << '\n';
  }
  {
    std::cout << "Figure 12 — two independent Dijkstra instances (still "
                 "reaches '!'):\n";
    dijkstra::DualKStateRing ring(n, K);
    dijkstra::DualConfig init(n);
    for (std::size_t i = 0; i < n; ++i) init[i].b = (i < n / 2) ? 1 : 0;
    auto sim = msgpass::make_dual_cst(ring, init, params);
    msgpass::TimelineRecorder rec(n, resolution);
    rec.attach(sim);
    sim.run(duration);
    std::cout << rec.render(cols) << '\n';
  }
  {
    std::cout << "Figure 13 — SSRmin (graceful handover: never '!', "
                 "overlaps '2' at handover):\n";
    core::SsrMinRing ring(n, K);
    auto sim = msgpass::make_ssrmin_cst(
        ring, core::canonical_legitimate(ring, 0), params);
    msgpass::TimelineRecorder rec(n, resolution);
    rec.attach(sim);
    sim.run(duration);
    std::cout << rec.render(cols) << '\n';
  }
  std::cout << "legend: '#' node holds a token | '.' idle | summary row: "
               "'!' zero holders, '2' two holders\n";
  return 0;
}
