// Interactive trace explorer: print Figure-4-style execution tables for
// any ring size, modulus, daemon, seed and starting condition. Useful for
// studying how the algorithm converges from chaos.
//
// Usage: ./examples/trace_explorer [options]
//   --n <int>        ring size (default 5)
//   --k <int>        modulus K > n (default n + 1)
//   --steps <int>    steps to trace (default 20)
//   --daemon <name>  central-round-robin | central-random |
//                    distributed-synchronous | distributed-random-subset |
//                    adversary-max-index   (default central-round-robin)
//   --seed <int>     RNG seed (default 1)
//   --start <mode>   legit | random | allzero   (default legit)
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "stabilizing/trace.hpp"

namespace {

const char* value_of(int argc, char** argv, const char* key,
                     const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], key) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  const auto n =
      static_cast<std::size_t>(std::atoi(value_of(argc, argv, "--n", "5")));
  const auto k_arg = std::atoi(value_of(argc, argv, "--k", "0"));
  const auto K = k_arg > 0 ? static_cast<std::uint32_t>(k_arg)
                           : static_cast<std::uint32_t>(n + 1);
  const auto steps = static_cast<std::uint64_t>(
      std::atoll(value_of(argc, argv, "--steps", "20")));
  const std::string daemon_name =
      value_of(argc, argv, "--daemon", "central-round-robin");
  const auto seed = static_cast<std::uint64_t>(
      std::atoll(value_of(argc, argv, "--seed", "1")));
  const std::string start = value_of(argc, argv, "--start", "legit");

  const core::SsrMinRing ring(n, K);
  Rng rng(seed);
  core::SsrConfig initial;
  if (start == "legit") {
    initial = core::canonical_legitimate(ring, 0);
  } else if (start == "random") {
    initial = core::random_config(ring, rng);
  } else if (start == "allzero") {
    initial.assign(n, core::SsrState{});
  } else {
    std::cerr << "unknown --start mode: " << start << '\n';
    return 2;
  }

  stab::Engine<core::SsrMinRing> engine(ring, initial);
  auto daemon = stab::make_daemon(daemon_name, rng.split());

  std::cout << "SSRmin, n=" << n << ", K=" << K << ", daemon=" << daemon_name
            << ", start=" << start << ", seed=" << seed << "\n"
            << "cell format: x.rts.tra [P=primary token, S=secondary token] "
               "/enabled-rule\n\n";

  stab::TraceRecorder<core::SsrMinRing> recorder;
  recorder.run(engine, *daemon, steps);
  std::cout << stab::format_trace<core::SsrMinRing>(recorder.entries(),
                                                    core::trace_style(ring));
  std::cout << "\nfinal configuration legitimate: "
            << (core::is_legitimate(ring, engine.config()) ? "yes" : "no")
            << " | privileged processes: "
            << core::privileged_count(ring, engine.config()) << '\n';
  return 0;
}
