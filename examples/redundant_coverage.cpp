// Redundant continuous coverage via multi-instance SSRmin — the (l, k)-
// critical-section family the paper's related work introduces (§1.2):
// running k independent instances guarantees at least k privileged slots
// at every instant (think: "at least two cameras must be recording at all
// times" in a safety-critical deployment).
//
// Usage: ./examples/redundant_coverage [nodes] [instances]
#include <cstdlib>
#include <iostream>

#include "inclusion/multi.hpp"
#include "msgpass/cst.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 9;
  const std::size_t k =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;

  const incl::MultiSsrMin ring(n, static_cast<std::uint32_t>(n + 1), k);
  std::cout << "ring of " << n << " nodes running " << k
            << " independent SSRmin instances ((" << k << ", " << 2 * k
            << ")-critical-section)\n\n";

  msgpass::NetworkParams net;
  net.seed = 7;

  TextTable table({"measured set", "min", "max", "zero intervals",
                   "coverage %"});
  auto run_with = [&](const std::string& label, auto predicate) {
    msgpass::CstSimulation<incl::MultiSsrMin> sim(
        ring, incl::staggered_legitimate(ring), predicate, net);
    const auto stats = sim.run(4000.0);
    table.row()
        .cell(label)
        .cell(stats.min_holders)
        .cell(stats.max_holders)
        .cell(stats.zero_intervals)
        .cell(100.0 * stats.coverage(), 2);
  };

  run_with("privileged nodes (any instance)",
           [&ring](std::size_t i, const incl::MultiState& self,
                   const incl::MultiState& pred, const incl::MultiState& succ) {
             return ring.tokens_at(i, self, pred, succ) > 0;
           });
  for (std::size_t j = 0; j < k; ++j) {
    run_with("instance " + std::to_string(j) + " holders",
             [&ring, j](std::size_t i, const incl::MultiState& self,
                        const incl::MultiState& pred,
                        const incl::MultiState& succ) {
               return ring.base().holds_primary(i, self.slots[j],
                                                pred.slots[j]) ||
                      ring.base().holds_secondary(self.slots[j],
                                                  succ.slots[j]);
             });
  }
  std::cout << table.render();
  std::cout << "\nEvery instance row reads min = 1: each of the " << k
            << " tokens is held by someone at every instant, so at least "
            << k << " privileged slots exist continuously.\n";
  return 0;
}
