// Self-stabilization in action: run SSRmin in a legitimate configuration,
// smash a node's memory mid-flight, and watch the ring repair itself —
// printing the configuration (with token marks and enabled rules) at every
// step so the repair is visible.
//
// Usage: ./examples/fault_injection [seed]
#include <cstdlib>
#include <iostream>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "stabilizing/trace.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  const std::size_t n = 5;
  const core::SsrMinRing ring(n, 6);
  stab::Engine<core::SsrMinRing> engine(ring,
                                        core::canonical_legitimate(ring, 2));
  stab::CentralRandomDaemon daemon{Rng(seed)};

  std::cout << "phase 1: healthy circulation (legitimate start)\n";
  stab::TraceRecorder<core::SsrMinRing> rec;
  rec.run(engine, daemon, 6);
  std::cout << stab::format_trace<core::SsrMinRing>(rec.entries(),
                                                    core::trace_style(ring));

  // Transient fault: node 3 reboots with garbage.
  Rng fault_rng(seed * 31 + 1);
  core::SsrState garbage;
  garbage.x = static_cast<std::uint32_t>(fault_rng.below(6));
  garbage.rts = fault_rng.bernoulli(0.5);
  garbage.tra = fault_rng.bernoulli(0.5);
  engine.corrupt(3, garbage);
  std::cout << "\n!!! transient fault: P3 state overwritten with "
            << core::format_state(garbage) << " !!!\n"
            << "configuration legitimate? "
            << (core::is_legitimate(ring, engine.config()) ? "yes" : "no")
            << "\n\nphase 2: self-repair\n";

  // Run until legitimate again, recording the repair.
  rec.clear();
  std::size_t repair_steps = 0;
  while (!core::is_legitimate(ring, engine.config()) && repair_steps < 1000) {
    rec.run(engine, daemon, 1);
    ++repair_steps;
  }
  // TraceRecorder::run appends a terminal entry per call; reformat from a
  // fresh recording for readability.
  std::cout << "repaired after " << repair_steps << " steps\n";

  std::cout << "\nphase 3: healthy circulation again\n";
  rec.clear();
  rec.run(engine, daemon, 6);
  std::cout << stab::format_trace<core::SsrMinRing>(rec.entries(),
                                                    core::trace_style(ring));
  std::cout << "\nNo global reset, no coordinator: the ring healed itself "
               "(Theorem 2 bounds the repair by O(n^2) steps).\n";
  return 0;
}
