// SSRmin on real threads: one thread per node, channels as links, live
// prints of every activation/deactivation, and a sampler verifying that
// some node is active at every consistent snapshot — the graceful
// handover, physically.
//
// Usage: ./examples/threaded_ring [nodes] [milliseconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "core/legitimacy.hpp"
#include "runtime/factories.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  using namespace std::chrono_literals;
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5;
  const int millis = argc > 2 ? std::atoi(argv[2]) : 300;

  const core::SsrMinRing ring(nodes, static_cast<std::uint32_t>(nodes + 1));
  runtime::RuntimeParams params;
  params.refresh_interval = 2ms;
  params.seed = 11;
  auto tr = runtime::make_ssrmin_threaded(
      ring, core::canonical_legitimate(ring, 0), params);

  std::mutex io;
  std::atomic<int> events{0};
  const auto t0 = std::chrono::steady_clock::now();
  tr->set_activation_callback([&](std::size_t i, bool active) {
    // Only narrate the first handovers; after that just count.
    const int k = events.fetch_add(1);
    if (k < 24) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      std::lock_guard lock(io);
      std::printf("%8lld us  camera %zu %s\n", static_cast<long long>(us), i,
                  active ? "ACTIVATES" : "deactivates");
    }
  });

  std::printf("starting %zu camera nodes (one thread each)...\n\n", nodes);
  tr->start();
  const runtime::SamplerReport report =
      tr->observe(std::chrono::milliseconds(millis), 200us);
  tr->stop();

  std::printf("\n--- %d ms of real-time operation ---\n", millis);
  std::printf("activation events        : %d\n", events.load());
  std::printf("consistent snapshots     : %llu\n",
              static_cast<unsigned long long>(report.consistent_samples));
  std::printf("snapshots with 0 holders : %llu  (graceful handover says 0)\n",
              static_cast<unsigned long long>(report.zero_holder_samples));
  std::printf("holders observed         : %zu..%zu  (Theorem 1 band: 1..2)\n",
              report.min_holders, report.max_holders);
  std::printf("messages sent            : %llu\n",
              static_cast<unsigned long long>(report.messages_sent));
  std::printf("protocol rules executed  : %llu\n",
              static_cast<unsigned long long>(report.rule_executions));
  return report.zero_holder_samples == 0 ? 0 : 1;
}
