// Quickstart: the 60-second tour of the library.
//
//   1. build an SSRmin ring (n processes, K > n),
//   2. start it from a *corrupted* (random) configuration,
//   3. let it self-stabilize under a scheduler of your choice,
//   4. watch the two tokens circulate gracefully afterwards.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "stabilizing/trace.hpp"

int main() {
  using namespace ssr;

  // 1. A bidirectional ring of 5 processes; K must exceed n (paper Alg. 3).
  const core::SsrMinRing ring(5, 6);

  // 2. An arbitrary initial configuration — as if every node just rebooted
  //    with garbage in memory.
  Rng rng(2024);
  stab::Engine<core::SsrMinRing> engine(ring, core::random_config(ring, rng));
  std::cout << "initial configuration legitimate? "
            << (core::is_legitimate(ring, engine.config()) ? "yes" : "no")
            << "\n\n";

  // 3. Run under the unfair distributed daemon (random subsets) until the
  //    configuration is legitimate. Theorem 2 bounds this by O(n^2) steps.
  stab::RandomSubsetDaemon daemon{Rng(7), 0.5};
  auto legit = [&ring](const core::SsrConfig& c) {
    return core::is_legitimate(ring, c);
  };
  const stab::RunResult result = stab::run_until(engine, daemon, legit, 10000);
  std::cout << "self-stabilized after " << result.steps << " daemon steps ("
            << result.moves << " process moves)\n\n";

  // 4. Record one revolution of the two-token inchworm and print it in the
  //    paper's Figure-4 notation ('P' = primary token, 'S' = secondary).
  stab::TraceRecorder<core::SsrMinRing> recorder;
  recorder.run(engine, daemon, 3 * ring.size());
  std::cout << stab::format_trace<core::SsrMinRing>(recorder.entries(),
                                                    core::trace_style(ring));
  std::cout << "\nAt every step at least one and at most two processes are "
               "privileged:\n  mutual inclusion, with graceful handover.\n";
  return 0;
}
