#!/usr/bin/env python3
"""Guard the checked-in bench trajectories.

Every ``BENCH_*.json`` file named in CHANGES.md is a commitment: the
repo root must contain it, it must parse as JSON, and it must hold at
least one row (a non-empty list of objects, or a dict with a non-empty
``rows`` list — both shapes TextTable::to_json has emitted). A bench
rerun that crashed half-way or wrote somewhere else fails CI here
instead of silently shipping a stale or missing trajectory.

Usage: python3 tools/check_bench_json.py [repo_root]
Exit code 0 if every named trajectory is present and parsable, 1
otherwise (with one line per problem on stderr).
"""

import json
import re
import sys
from pathlib import Path


def named_trajectories(changes_text: str) -> list[str]:
    names = re.findall(r"\bBENCH_[A-Za-z0-9_]+\.json\b", changes_text)
    # Preserve first-mention order, drop duplicates.
    return list(dict.fromkeys(names))


def truthy_cell(value) -> bool:
    """TextTable emits booleans as yes/no strings in some columns and as
    JSON booleans/ints in others; accept the union."""
    if value in (True, 1):
        return True
    return isinstance(value, str) and value.lower() in {"yes", "true", "1", "on"}


def check_backend_rows(name: str, doc, problems: list[str]) -> None:
    """Any trajectory produced by a lane-dispatched engine must say which
    backend ran: every row carries ``backend`` (u64/avx2/avx512, or
    ``scalar`` for non-sliced rows) and ``lanes``, and at least one row
    ran a bit-sliced backend (lanes >= 64 — the u64 fallback exists on
    every host, so this never depends on SIMD hardware). A rerun that
    dropped the columns or silently fell back to all-scalar fails CI
    here instead of shipping a trajectory that no longer measures the
    sliced engines."""
    if not isinstance(doc, list):
        problems.append(f"{name}: expected a row list to check backend coverage")
        return
    missing = [i for i, row in enumerate(doc)
               if not isinstance(row, dict)
               or "backend" not in row or "lanes" not in row]
    if missing:
        problems.append(
            f"{name}: rows {missing[:5]} lack the 'backend'/'lanes' columns")
        return
    def lane_count(row):
        try:
            return int(row["lanes"])
        except (TypeError, ValueError):
            return 0
    if not any(lane_count(row) >= 64 for row in doc):
        problems.append(
            f"{name}: no row ran a bit-sliced backend (lanes >= 64); "
            "regenerate without forcing the scalar engines")


def check_batched_rows(name: str, doc, problems: list[str]) -> None:
    """BENCH_convergence.json must record the bit-sliced engine: every row
    carries a ``batched`` key and at least one row ran batched. A rerun
    that silently fell back to the scalar engines (or was regenerated with
    ``--batched off``) fails Release CI here instead of shipping a
    trajectory that no longer measures the batch engine."""
    if not isinstance(doc, list):
        problems.append(f"{name}: expected a row list to check batched coverage")
        return
    missing = [i for i, row in enumerate(doc)
               if not isinstance(row, dict) or "batched" not in row]
    if missing:
        problems.append(
            f"{name}: rows {missing[:5]} lack the 'batched' column")
        return
    if not any(truthy_cell(row["batched"]) for row in doc):
        problems.append(
            f"{name}: no row ran with the batched engine "
            "(regenerate without --batched off)")


def check_spill_rows(name: str, doc, problems: list[str]) -> None:
    """BENCH_modelcheck.json must track the out-of-core tier: every row
    carries ``spill_bytes`` (0 for the in-RAM modes) and at least one row
    actually ran ``mode == "spill"`` with a nonzero stream. A rerun that
    dropped the column or never exercised the spill backend fails CI here
    instead of shipping a trajectory that no longer measures Phase B's
    disk tier."""
    if not isinstance(doc, list):
        problems.append(f"{name}: expected a row list to check spill coverage")
        return
    missing = [i for i, row in enumerate(doc)
               if not isinstance(row, dict) or "spill_bytes" not in row]
    if missing:
        problems.append(
            f"{name}: rows {missing[:5]} lack the 'spill_bytes' column")
        return
    def spilled(row):
        try:
            return row.get("mode") == "spill" and int(row["spill_bytes"]) > 0
        except (TypeError, ValueError):
            return False
    if not any(spilled(row) for row in doc):
        problems.append(
            f"{name}: no row ran the spill storage mode with a nonzero "
            "stream; regenerate with the out-of-core rows enabled")


def check_multiring_rows(name: str, doc, problems: list[str]) -> None:
    """BENCH_multiring.json must chart the reactor scaling claim: at least
    three scale rows, each carrying ``rings``, ``handovers_per_sec`` and
    ``p99_us``. A rerun that dropped the 100k row or renamed the latency
    column fails CI here instead of shipping a trajectory that no longer
    backs E27."""
    if not isinstance(doc, list):
        problems.append(f"{name}: expected a row list of scale points")
        return
    if len(doc) < 3:
        problems.append(
            f"{name}: only {len(doc)} scale rows; need >= 3 (1k/10k/100k)")
        return
    required = ("rings", "handovers_per_sec", "p99_us")
    for i, row in enumerate(doc):
        missing = [k for k in required
                   if not isinstance(row, dict) or k not in row]
        if missing:
            problems.append(f"{name}: row {i} lacks columns {missing}")
            return


def check_cst_rows(name: str, doc, problems: list[str]) -> None:
    """BENCH_cst.json must chart the sharded-engine scaling claim: at
    least three scale rows, each carrying ``n``, ``workers`` and
    ``events_per_sec``. A rerun that dropped the million-node row or
    renamed the throughput column fails CI here instead of shipping a
    trajectory that no longer backs E28."""
    if not isinstance(doc, list):
        problems.append(f"{name}: expected a row list of scale points")
        return
    if len(doc) < 3:
        problems.append(
            f"{name}: only {len(doc)} scale rows; need >= 3 (10^4/10^5/10^6)")
        return
    required = ("n", "workers", "events_per_sec")
    for i, row in enumerate(doc):
        missing = [k for k in required
                   if not isinstance(row, dict) or k not in row]
        if missing:
            problems.append(f"{name}: row {i} lacks columns {missing}")
            return


def row_count(doc) -> int:
    """Rows in either emitted shape: a bare list of row objects
    (TextTable::to_json) or a dict wrapping one or more row lists under
    keys like ``rows``/``runs`` (the telemetry benches)."""
    if isinstance(doc, list):
        return len(doc)
    if isinstance(doc, dict):
        list_lens = [len(v) for v in doc.values() if isinstance(v, list)]
        if list_lens:
            return max(list_lens)
        return 1 if doc else 0
    return 0


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    changes = root / "CHANGES.md"
    if not changes.is_file():
        print(f"error: {changes} not found", file=sys.stderr)
        return 1
    names = named_trajectories(changes.read_text(encoding="utf-8"))
    if not names:
        print("check_bench_json: CHANGES.md names no BENCH_*.json; nothing to do")
        return 0
    problems = []
    for name in names:
        path = root / name
        if not path.is_file():
            problems.append(f"{name}: named in CHANGES.md but missing from the repo root")
            continue
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as err:
            problems.append(f"{name}: unparsable JSON ({err})")
            continue
        rows = row_count(doc)
        if rows == 0:
            problems.append(f"{name}: parsed but holds no rows")
            continue
        if name == "BENCH_convergence.json":
            before = len(problems)
            check_batched_rows(name, doc, problems)
            check_backend_rows(name, doc, problems)
            if len(problems) > before:
                continue
        if name == "BENCH_modelcheck.json":
            before = len(problems)
            check_backend_rows(name, doc, problems)
            check_spill_rows(name, doc, problems)
            if len(problems) > before:
                continue
        if name == "BENCH_multiring.json":
            before = len(problems)
            check_multiring_rows(name, doc, problems)
            if len(problems) > before:
                continue
        if name == "BENCH_cst.json":
            before = len(problems)
            check_cst_rows(name, doc, problems)
            if len(problems) > before:
                continue
        print(f"check_bench_json: {name} ok ({rows} rows)")
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
