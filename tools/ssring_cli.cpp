// ssring — the umbrella command-line tool for the library.
//
//   ssring trace     [--n N] [--k K] [--steps S] [--daemon D] [--seed X]
//                    [--start legit|random|allzero]
//       Print a Figure-4-style execution table.
//
//   ssring converge  [--n N] [--trials T] [--daemon D] [--seed X]
//                    [--threads W] [--batched on|off]
//       Convergence-step statistics from random initial configurations.
//       Trials fan out over W workers (0 = hardware); the table is
//       identical at every worker count. --batched (default on) runs
//       64/256/512 bit-sliced trials per lane word (widest backend the CPU
//       supports; override with SSRING_LANE_BACKEND) when the daemon has a
//       lane replay — same table, less wall time.
//
//   ssring check     [--n N] [--k K] [--threads T] [--mode M] [--tmpdir D]
//       Exhaustive model check (small n): lemmas 1/2/4/6 + exact worst
//       case. T = 0 (default) uses one worker per hardware thread; the
//       report is identical at every thread count and in every --mode,
//       including spill (Phase B move records stream through a temp file
//       in --tmpdir / $SSRING_CHECK_TMPDIR when the space outgrows RAM).
//
//   ssring modelgap  [--n N] [--delay D] [--duration T] [--seed X]
//                    [--workers W]
//       Token availability of ssrmin vs dijkstra vs 2x dijkstra under CST.
//       W > 1 shards the conservative PDES engine over contiguous ring
//       segments (0 = hardware threads); the table is byte-identical at
//       every worker count.
//
//   ssring timeline  [--n N] [--cols C] [--algo ssrmin|dijkstra|dual]
//       ASCII token timeline (the Figures 11-13 visual).
//
//   ssring camera    [--n N] [--duration T]
//       Camera-network policy comparison.
//
//   ssring mis       [--n N] [--topology ring|path|star|complete|random]
//       Run the MIS (local mutual inclusion) to silence and print it.
//
//   ssring markov    [--n N] [--k K]
//       Exact expected stabilization time under the random central daemon.
//
//   ssring perturb   [--n N] [--k K]
//       Exhaustive single-fault recovery analysis.
//
//   ssring tail      [--n N] [--spread S] [--duration T]
//       Delay-variance stress on the graceful handover (experiment E22).
//
//   ssring run-threaded [--n N] [--k K] [--seed X] [--algo ssrmin|dijkstra]
//                       [--duration-ms D] [--interval-us I] [--refresh-us R]
//                       [--loss P] [--fault-plan SPEC] [--telemetry-json F]
//       Run the real-thread runtime under a fault plan and report holder
//       coverage; optionally export the telemetry JSON ('-' = stdout).
//
//   ssring run-udp      [--n N] [--k K] [--seed X] [--duration-ms D]
//                       [--interval-us I] [--refresh-us R] [--drop P]
//                       [--corrupt P] [--fault-plan SPEC]
//                       [--telemetry-json F]
//       Same over loopback UDP sockets with CRC-framed wire messages.
//
//   ssring run-multi    [--rings R] [--n N] [--k K] [--seed X]
//                       [--protocol ssrmin|dijkstra|dual|mixed]
//                       [--shards S] [--transport virtual|udp]
//                       [--duration-ms D] [--refresh-us R]
//                       [--start random|legit] [--fault-plan SPEC]
//                       [--telemetry-json F]
//       Host R independent rings on one epoll-multiplexed reactor (v2
//       wire frames over shared sockets). The virtual transport is
//       seeded-deterministic; --telemetry-json exports per-ring PR-3
//       telemetry ('-' = stdout). Exits 0 iff every ring ends legitimate.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "core/ssrmin_sliced.hpp"
#include "dijkstra/dual.hpp"
#include "graph/check.hpp"
#include "graph/protocol.hpp"
#include "inclusion/camera.hpp"
#include "msgpass/factories.hpp"
#include "msgpass/timeline.hpp"
#include "runtime/factories.hpp"
#include "runtime/reactor.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/udp_ring.hpp"
#include "sim/batch_dispatch.hpp"
#include "sim/batch_engine.hpp"
#include "sim/sweep.hpp"
#include "util/lane_backend.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "stabilizing/trace.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "verify/checkers.hpp"
#include "verify/markov.hpp"
#include "verify/perturbation.hpp"

namespace {

using namespace ssr;

const char* value_of(int argc, char** argv, const char* key,
                     const char* fallback) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], key) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* key) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], key) == 0) return true;
  }
  return false;
}

std::size_t arg_n(int argc, char** argv, const char* fallback = "5") {
  return static_cast<std::size_t>(std::atoi(value_of(argc, argv, "--n", fallback)));
}

std::uint32_t arg_k(int argc, char** argv, std::size_t n) {
  const int k = std::atoi(value_of(argc, argv, "--k", "0"));
  return k > 0 ? static_cast<std::uint32_t>(k)
               : static_cast<std::uint32_t>(n + 1);
}

std::uint64_t arg_seed(int argc, char** argv) {
  return static_cast<std::uint64_t>(
      std::atoll(value_of(argc, argv, "--seed", "1")));
}

int cmd_trace(int argc, char** argv) {
  const std::size_t n = arg_n(argc, argv);
  const std::uint32_t K = arg_k(argc, argv, n);
  const auto steps = static_cast<std::uint64_t>(
      std::atoll(value_of(argc, argv, "--steps", "20")));
  const std::string daemon_name =
      value_of(argc, argv, "--daemon", "central-round-robin");
  const std::string start = value_of(argc, argv, "--start", "legit");
  Rng rng(arg_seed(argc, argv));

  const core::SsrMinRing ring(n, K);
  core::SsrConfig initial;
  if (start == "legit") {
    initial = core::canonical_legitimate(ring, 0);
  } else if (start == "random") {
    initial = core::random_config(ring, rng);
  } else if (start == "allzero") {
    initial.assign(n, core::SsrState{});
  } else {
    std::cerr << "unknown --start: " << start << '\n';
    return 2;
  }
  stab::Engine<core::SsrMinRing> engine(ring, initial);
  auto daemon = stab::make_daemon(daemon_name, rng.split());
  stab::TraceRecorder<core::SsrMinRing> rec;
  rec.run(engine, *daemon, steps);
  std::cout << stab::format_trace<core::SsrMinRing>(rec.entries(),
                                                    core::trace_style(ring));
  std::cout << "\nlegitimate: "
            << (core::is_legitimate(ring, engine.config()) ? "yes" : "no")
            << ", privileged: "
            << core::privileged_count(ring, engine.config()) << '\n';
  return 0;
}

int cmd_converge(int argc, char** argv) {
  const std::size_t n = arg_n(argc, argv, "16");
  const std::uint32_t K = arg_k(argc, argv, n);
  const int trials = std::atoi(value_of(argc, argv, "--trials", "50"));
  const std::string daemon_name =
      value_of(argc, argv, "--daemon", "distributed-random-subset");
  sim::SweepOptions sweep_options;
  sweep_options.threads = static_cast<std::size_t>(
      std::atoi(value_of(argc, argv, "--threads", "0")));
  // --batched on|off (default on): bit-sliced 64-lane execution whenever
  // the requested daemon has a lane replay; the statistics are identical
  // either way (the lanes replay the scalar trials draw-for-draw).
  const std::string batched_arg = value_of(argc, argv, "--batched", "on");
  const bool batched_requested =
      !(batched_arg == "off" || batched_arg == "0" || batched_arg == "no" ||
        batched_arg == "false");
  const bool use_batch =
      batched_requested && sim::batch_daemon_supported(daemon_name);

  const core::SsrMinRing ring(n, K);
  sim::TrialSweep sweep(sweep_options);
  const std::uint64_t seed = arg_seed(argc, argv);
  const std::uint64_t budget = 200ULL * n * n;
  std::vector<double> results;
  const util::LaneBackend backend = util::detect_lane_backend();
  if (use_batch) {
    const auto spec = sim::lane_daemon_spec(daemon_name);
    const auto blocks =
        sim::plan_blocks(static_cast<std::uint64_t>(trials), sweep.threads(),
                         util::lane_backend_lanes(backend));
    const auto per_block = sweep.map(blocks.size(), [&](std::uint64_t b) {
      return sim::run_convergence_block_ssrmin(ring, spec, seed, blocks[b],
                                               budget, /*two_phase=*/false,
                                               backend);
    });
    for (const auto& block : per_block) {
      for (const auto& trial : block) {
        results.push_back(trial.result.reached
                              ? static_cast<double>(trial.result.steps)
                              : -1.0);
      }
    }
  } else {
    results = sweep.run_trials(
        seed, static_cast<std::uint64_t>(trials),
        [&](std::uint64_t, Rng& rng) {
          stab::Engine<core::SsrMinRing> engine(
              ring, core::random_config(ring, rng));
          auto daemon = stab::make_daemon(daemon_name, rng.split());
          auto legit = [&ring](const core::SsrConfig& c) {
            return core::is_legitimate(ring, c);
          };
          const auto r = stab::run_until(engine, *daemon, legit, budget);
          return r.reached ? static_cast<double>(r.steps) : -1.0;
        });
  }
  SampleSet steps;
  for (double s : results) {
    if (s >= 0.0) steps.add(s);
  }
  std::cout << "(engine: " << (use_batch ? "batched" : "scalar");
  if (use_batch) {
    std::cout << ", backend " << util::lane_backend_name(backend) << " x"
              << util::lane_backend_lanes(backend) << " lanes";
  }
  if (batched_requested && !use_batch) {
    std::cout << "; daemon '" << daemon_name << "' has no lane replay";
  }
  std::cout << ")\n";
  TextTable table({"n", "K", "daemon", "trials", "mean", "p50", "p95", "max",
                   "mean/n^2"});
  table.row()
      .cell(n)
      .cell(K)
      .cell(daemon_name)
      .cell(steps.count())
      .cell(steps.mean(), 1)
      .cell(steps.median(), 1)
      .cell(steps.percentile(95), 1)
      .cell(steps.max(), 0)
      .cell(steps.mean() / (static_cast<double>(n) * n), 3);
  std::cout << table.render();
  return 0;
}

int cmd_check(int argc, char** argv) {
  const std::size_t n = arg_n(argc, argv, "3");
  const std::uint32_t K = arg_k(argc, argv, n);
  const std::string protocol = value_of(argc, argv, "--protocol", "ssrmin");
  verify::CheckOptions options;
  options.threads = static_cast<std::size_t>(
      std::atoi(value_of(argc, argv, "--threads", "0")));
  const std::string mode = value_of(argc, argv, "--mode", "auto");
  if (mode == "auto") {
    options.storage = verify::PhaseBStorage::kAuto;
  } else if (mode == "legacy-csr" || mode == "legacy") {
    options.storage = verify::PhaseBStorage::kLegacyCsr;
  } else if (mode == "compressed") {
    options.storage = verify::PhaseBStorage::kCompressed;
  } else if (mode == "csr-free") {
    options.storage = verify::PhaseBStorage::kCsrFree;
  } else if (mode == "spill") {
    options.storage = verify::PhaseBStorage::kSpill;
  } else {
    std::cerr << "unknown --mode " << mode
              << " (auto | legacy-csr | compressed | csr-free | spill)\n";
    return 2;
  }
  options.memory_budget_bytes = static_cast<std::uint64_t>(
      std::atoll(value_of(argc, argv, "--budget", "0")));
  options.spill_dir = value_of(argc, argv, "--tmpdir", "");
  const std::string phase_a = value_of(argc, argv, "--phase-a", "auto");
  if (phase_a == "auto") {
    options.phase_a = verify::PhaseAMode::kAuto;
  } else if (phase_a == "scalar") {
    options.phase_a = verify::PhaseAMode::kScalar;
  } else if (phase_a == "sliced") {
    options.phase_a = verify::PhaseAMode::kSliced;
  } else {
    std::cerr << "unknown --phase-a " << phase_a
              << " (auto | scalar | sliced)\n";
    return 2;
  }
  const bool stats = has_flag(argc, argv, "--stats");

  auto check = [&](auto checker, const char* name) {
    std::cout << "checking all " << checker.codec().total()
              << " configurations of " << name << "(n=" << n << ", K=" << K
              << ") under the full distributed daemon...\n";
    const auto report = checker.run(options);
    std::cout << report.summary() << '\n';
    if (stats) std::cout << report.stats.summary() << '\n';
    return report.all_ok() ? 0 : 1;
  };
  if (protocol == "ssrmin") {
    return check(verify::make_ssrmin_checker(n, K), "SSRmin");
  }
  if (protocol == "dijkstra") {
    return check(verify::make_kstate_checker(n, K), "Dijkstra");
  }
  std::cerr << "unknown --protocol " << protocol << " (ssrmin | dijkstra)\n";
  return 2;
}

int cmd_modelgap(int argc, char** argv) {
  const std::size_t n = arg_n(argc, argv, "5");
  const std::uint32_t K = arg_k(argc, argv, n);
  const double delay = std::atof(value_of(argc, argv, "--delay", "1.0"));
  const double duration =
      std::atof(value_of(argc, argv, "--duration", "4000"));
  msgpass::NetworkParams net;
  net.delay_min = 0.5 * delay;
  net.delay_max = delay;
  net.refresh_interval = 8.0 * delay;
  net.seed = arg_seed(argc, argv);
  // Sharded engine: 0 = one worker per hardware thread. Statistics are
  // byte-identical at every worker count; this is a wall-clock knob.
  net.workers = static_cast<std::size_t>(
      std::atoi(value_of(argc, argv, "--workers", "1")));

  TextTable table({"algorithm", "coverage %", "zero intervals", "min holders",
                   "max holders", "handovers"});
  auto add = [&table](const std::string& name,
                      const msgpass::CoverageStats& s) {
    table.row()
        .cell(name)
        .cell(100.0 * s.coverage(), 2)
        .cell(s.zero_intervals)
        .cell(s.min_holders)
        .cell(s.max_holders)
        .cell(s.handovers);
  };
  {
    dijkstra::KStateRing ring(n, K);
    auto sim = msgpass::make_kstate_cst(ring, dijkstra::KStateConfig(n), net);
    add("dijkstra", sim.run(duration));
  }
  {
    dijkstra::DualKStateRing ring(n, K);
    dijkstra::DualConfig init(n);
    for (std::size_t i = 0; i < n; ++i) init[i].b = (i < n / 2) ? 1 : 0;
    auto sim = msgpass::make_dual_cst(ring, init, net);
    add("2x dijkstra", sim.run(duration));
  }
  {
    core::SsrMinRing ring(n, K);
    auto sim = msgpass::make_ssrmin_cst(
        ring, core::canonical_legitimate(ring, 0), net);
    add("ssrmin", sim.run(duration));
  }
  std::cout << table.render();
  return 0;
}

int cmd_timeline(int argc, char** argv) {
  const std::size_t n = arg_n(argc, argv, "5");
  const std::uint32_t K = arg_k(argc, argv, n);
  const auto cols = static_cast<std::size_t>(
      std::atoi(value_of(argc, argv, "--cols", "96")));
  const std::string algo = value_of(argc, argv, "--algo", "ssrmin");
  msgpass::NetworkParams net;
  net.seed = arg_seed(argc, argv);
  const double resolution = 0.5;
  const double duration = resolution * static_cast<double>(cols) + 5.0;
  msgpass::TimelineRecorder rec(n, resolution);
  if (algo == "ssrmin") {
    core::SsrMinRing ring(n, K);
    auto sim = msgpass::make_ssrmin_cst(
        ring, core::canonical_legitimate(ring, 0), net);
    rec.attach(sim);
    sim.run(duration);
  } else if (algo == "dijkstra") {
    dijkstra::KStateRing ring(n, K);
    auto sim = msgpass::make_kstate_cst(ring, dijkstra::KStateConfig(n), net);
    rec.attach(sim);
    sim.run(duration);
  } else if (algo == "dual") {
    dijkstra::DualKStateRing ring(n, K);
    dijkstra::DualConfig init(n);
    for (std::size_t i = 0; i < n; ++i) init[i].b = (i < n / 2) ? 1 : 0;
    auto sim = msgpass::make_dual_cst(ring, init, net);
    rec.attach(sim);
    sim.run(duration);
  } else {
    std::cerr << "unknown --algo: " << algo << '\n';
    return 2;
  }
  std::cout << rec.render(cols);
  std::cout << "legend: '#' holds a token, '!' zero holders, '2' two "
               "holders\n";
  return 0;
}

int cmd_camera(int argc, char** argv) {
  incl::CameraParams params;
  params.node_count = arg_n(argc, argv, "8");
  params.duration = std::atof(value_of(argc, argv, "--duration", "3000"));
  params.net.seed = arg_seed(argc, argv);
  TextTable table({"policy", "coverage %", "blackouts", "mean active",
                   "energy", "min battery", "fairness"});
  for (auto policy :
       {incl::CameraPolicy::kSsrMin, incl::CameraPolicy::kDijkstra,
        incl::CameraPolicy::kDualDijkstra, incl::CameraPolicy::kAllActive}) {
    const auto r = incl::run_camera(policy, params);
    table.row()
        .cell(incl::to_string(policy))
        .cell(100.0 * r.coverage, 3)
        .cell(r.blackout_intervals)
        .cell(r.mean_active, 2)
        .cell(r.energy_consumed, 0)
        .cell(r.min_battery, 1)
        .cell(r.duty_fairness, 3);
  }
  std::cout << table.render();
  return 0;
}

int cmd_mis(int argc, char** argv) {
  const std::size_t n = arg_n(argc, argv, "9");
  const std::string topo_name = value_of(argc, argv, "--topology", "ring");
  Rng rng(arg_seed(argc, argv));
  graph::Topology topo = [&]() {
    if (topo_name == "ring") return graph::Topology::ring(n);
    if (topo_name == "path") return graph::Topology::path(n);
    if (topo_name == "star") return graph::Topology::star(n);
    if (topo_name == "complete") return graph::Topology::complete(n);
    if (topo_name == "random")
      return graph::Topology::random_connected(n, 0.25, rng);
    std::cerr << "unknown --topology: " << topo_name << "; using ring\n";
    return graph::Topology::ring(n);
  }();
  graph::TurauMis mis(topo);
  graph::GraphEngine<graph::TurauMis> engine(mis,
                                             graph::random_config(topo, rng));
  stab::RandomSubsetDaemon daemon{rng.split(), 0.5};
  const auto steps = graph::run_to_silence(engine, daemon, 1000000);
  if (!steps.has_value()) {
    std::cerr << "did not stabilize within the step budget\n";
    return 1;
  }
  std::cout << "topology " << topo_name << " (n=" << n << ", "
            << topo.edge_count() << " edges) stabilized after " << *steps
            << " steps\n";
  std::cout << "MIS members (always-active nodes):";
  for (std::size_t m : graph::mis_members(engine.config())) {
    std::cout << " v" << m;
  }
  std::cout << "\nstable MIS: "
            << (graph::is_stable_mis(topo, engine.config()) ? "yes" : "no")
            << '\n';
  return 0;
}

int cmd_markov(int argc, char** argv) {
  const std::size_t n = arg_n(argc, argv, "3");
  const std::uint32_t K = arg_k(argc, argv, n);
  auto checker = verify::make_ssrmin_checker(n, K);
  verify::CheckOptions options;
  options.keep_heights = true;
  const auto check = checker.run(options);
  const auto hit = verify::expected_hitting_times(checker);
  TextTable table({"configs", "mean E[steps]", "max E[steps]",
                   "adversarial worst case", "solver converged"});
  table.row()
      .cell(checker.codec().total())
      .cell(hit.mean_expected, 3)
      .cell(hit.max_expected, 3)
      .cell(check.worst_case_steps)
      .cell(hit.converged);
  std::cout << table.render();
  return 0;
}

int cmd_perturb(int argc, char** argv) {
  const std::size_t n = arg_n(argc, argv, "3");
  const std::uint32_t K = arg_k(argc, argv, n);
  const verify::PerturbationReport r = verify::analyze_single_faults(n, K);
  std::cout << r.summary() << "\nrecovery distribution:\n";
  TextTable hist({"steps", "cases"});
  for (std::size_t s = 0; s < r.histogram.size(); ++s) {
    if (r.histogram[s] != 0) hist.row().cell(s).cell(r.histogram[s]);
  }
  std::cout << hist.render();
  return r.safety_preserved ? 0 : 1;
}

int cmd_tail(int argc, char** argv) {
  const std::size_t n = arg_n(argc, argv, "3");
  const std::uint32_t K = arg_k(argc, argv, n);
  const double spread = std::atof(value_of(argc, argv, "--spread", "3.0"));
  const double duration =
      std::atof(value_of(argc, argv, "--duration", "200000"));
  TextTable table({"delay model", "coverage %", "zero intervals",
                   "mean gap"});
  for (auto model : {msgpass::DelayModel::kUniform,
                     msgpass::DelayModel::kExponentialTail}) {
    core::SsrMinRing ring(n, K);
    msgpass::NetworkParams p;
    p.delay_min = 0.05;
    p.delay_max = 0.05 + spread;
    p.delay_model = model;
    p.service_min = 0.05;
    p.service_max = 0.1;
    p.refresh_interval = 40.0;
    p.seed = arg_seed(argc, argv);
    auto sim = msgpass::make_ssrmin_cst(
        ring, core::canonical_legitimate(ring, 0), p);
    const auto s = sim.run(duration);
    table.row()
        .cell(model == msgpass::DelayModel::kUniform ? "uniform"
                                                     : "exponential tail")
        .cell(100.0 * s.coverage(), 4)
        .cell(s.zero_intervals)
        .cell(s.zero_intervals > 0
                  ? s.zero_token_time / static_cast<double>(s.zero_intervals)
                  : 0.0,
              2);
  }
  std::cout << table.render();
  return 0;
}

/// Shared option parsing for the two runtime commands.
struct RuntimeRunArgs {
  std::size_t n = 0;
  std::uint32_t k = 0;
  std::uint64_t seed = 1;
  std::chrono::milliseconds duration{400};
  std::chrono::microseconds interval{200};
  std::chrono::microseconds refresh{1000};
  runtime::FaultPlan plan;
  std::string telemetry_path;  // empty = none, "-" = stdout
};

RuntimeRunArgs parse_runtime_args(int argc, char** argv,
                                  const char* default_refresh_us) {
  RuntimeRunArgs a;
  a.n = arg_n(argc, argv, "5");
  a.k = arg_k(argc, argv, a.n);
  a.seed = arg_seed(argc, argv);
  a.duration = std::chrono::milliseconds(
      std::atoll(value_of(argc, argv, "--duration-ms", "400")));
  a.interval = std::chrono::microseconds(
      std::atoll(value_of(argc, argv, "--interval-us", "200")));
  a.refresh = std::chrono::microseconds(
      std::atoll(value_of(argc, argv, "--refresh-us", default_refresh_us)));
  a.plan = runtime::FaultPlan::parse(value_of(argc, argv, "--fault-plan", ""));
  a.telemetry_path = value_of(argc, argv, "--telemetry-json", "");
  return a;
}

int write_telemetry(const std::string& path,
                    const runtime::Telemetry& telemetry) {
  if (path.empty()) return 0;
  const std::string json = telemetry.to_json_string();
  if (path == "-") {
    std::cout << json;
    return 0;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << json;
  std::cout << "telemetry written to " << path << '\n';
  return 0;
}

void print_runtime_report(const runtime::SamplerReport& r) {
  TextTable table({"samples", "consistent", "zero-holder", "min", "max",
                   "handovers", "sent", "lost", "rejected", "send errors",
                   "rules"});
  table.row()
      .cell(r.samples)
      .cell(r.consistent_samples)
      .cell(r.zero_holder_samples)
      .cell(r.min_holders)
      .cell(r.max_holders)
      .cell(r.handovers)
      .cell(r.messages_sent)
      .cell(r.messages_lost)
      .cell(r.messages_rejected)
      .cell(r.send_errors)
      .cell(r.rule_executions);
  std::cout << table.render();
}

int cmd_run_threaded(int argc, char** argv) {
  const RuntimeRunArgs a = parse_runtime_args(argc, argv, "1000");
  const std::string algo = value_of(argc, argv, "--algo", "ssrmin");
  runtime::RuntimeParams params;
  params.refresh_interval = a.refresh;
  params.loss_probability = std::atof(value_of(argc, argv, "--loss", "0"));
  params.seed = a.seed;
  params.fault_plan = a.plan;

  runtime::Telemetry telemetry(a.n);
  telemetry.set_context("threaded", algo, a.seed);
  runtime::SamplerReport report;
  if (algo == "ssrmin") {
    const core::SsrMinRing ring(a.n, a.k);
    auto rt = runtime::make_ssrmin_threaded(
        ring, core::canonical_legitimate(ring, 0), params);
    rt->start();
    report = rt->observe(a.duration, a.interval, &telemetry);
    rt->stop();
  } else if (algo == "dijkstra") {
    const dijkstra::KStateRing ring(a.n, a.k);
    auto rt = runtime::make_kstate_threaded(
        ring, dijkstra::KStateConfig(a.n), params);
    rt->start();
    report = rt->observe(a.duration, a.interval, &telemetry);
    rt->stop();
  } else {
    std::cerr << "unknown --algo: " << algo << '\n';
    return 2;
  }
  print_runtime_report(report);
  return write_telemetry(a.telemetry_path, telemetry);
}

int cmd_run_udp(int argc, char** argv) {
  const RuntimeRunArgs a = parse_runtime_args(argc, argv, "2000");
  runtime::UdpParams params;
  params.refresh_interval = a.refresh;
  params.drop_probability = std::atof(value_of(argc, argv, "--drop", "0"));
  params.corruption_probability =
      std::atof(value_of(argc, argv, "--corrupt", "0"));
  params.seed = a.seed;
  params.fault_plan = a.plan;

  const core::SsrMinRing ring(a.n, a.k);
  runtime::UdpSsrRing rt(ring, core::canonical_legitimate(ring, 0), params);
  runtime::Telemetry telemetry(a.n);
  telemetry.set_context("udp", "ssrmin", a.seed);
  rt.start();
  const runtime::SamplerReport report =
      rt.observe(a.duration, a.interval, &telemetry);
  rt.stop();
  print_runtime_report(report);
  return write_telemetry(a.telemetry_path, telemetry);
}

int cmd_run_multi(int argc, char** argv) {
  runtime::ReactorConfig config;
  config.rings = static_cast<std::size_t>(
      std::atoll(value_of(argc, argv, "--rings", "256")));
  config.nodes = arg_n(argc, argv, "4");
  config.modulus = std::atoi(value_of(argc, argv, "--k", "0")) > 0
                       ? static_cast<std::uint32_t>(
                             std::atoi(value_of(argc, argv, "--k", "0")))
                       : 0;
  config.shards = static_cast<std::size_t>(
      std::atoll(value_of(argc, argv, "--shards", "1")));
  config.seed = arg_seed(argc, argv);
  config.refresh_interval = std::chrono::microseconds(
      std::atoll(value_of(argc, argv, "--refresh-us", "5000")));
  config.fault_plan =
      runtime::FaultPlan::parse(value_of(argc, argv, "--fault-plan", ""));
  const std::string protocol = value_of(argc, argv, "--protocol", "ssrmin");
  if (protocol == "mixed") {
    config.mixed = true;
  } else if (protocol == "ssrmin") {
    config.protocol = runtime::RingProtocolKind::kSsrMin;
  } else if (protocol == "dijkstra" || protocol == "kstate") {
    config.protocol = runtime::RingProtocolKind::kKState;
  } else if (protocol == "dual") {
    config.protocol = runtime::RingProtocolKind::kDual;
  } else {
    std::cerr << "unknown --protocol: " << protocol
              << " (ssrmin|dijkstra|dual|mixed)\n";
    return 2;
  }
  const std::string transport = value_of(argc, argv, "--transport", "virtual");
  if (transport == "virtual") {
    config.transport = runtime::ReactorTransport::kVirtual;
  } else if (transport == "udp") {
    config.transport = runtime::ReactorTransport::kUdp;
  } else {
    std::cerr << "unknown --transport: " << transport << " (virtual|udp)\n";
    return 2;
  }
  config.start = std::strcmp(value_of(argc, argv, "--start", "random"),
                             "legit") == 0
                     ? runtime::RingStart::kLegitimate
                     : runtime::RingStart::kRandom;
  const std::string telemetry_path =
      value_of(argc, argv, "--telemetry-json", "");
  config.per_ring_telemetry = !telemetry_path.empty();
  const auto duration = std::chrono::milliseconds(
      std::atoll(value_of(argc, argv, "--duration-ms", "200")));

  runtime::MultiRingReactor reactor(config);
  const runtime::ReactorReport r =
      reactor.run(std::chrono::duration_cast<std::chrono::microseconds>(
          duration));

  TextTable table({"rings", "shards", "legit", "token live", "handovers",
                   "handovers/s", "p50 us", "p99 us", "p99.9 us", "sent",
                   "received", "rejected", "kernel drops"});
  table.row()
      .cell(r.rings)
      .cell(r.shards)
      .cell(r.rings_legitimate)
      .cell(r.rings_with_holder)
      .cell(r.handovers)
      .cell(r.handovers_per_sec, 0)
      .cell(r.p50_us, 1)
      .cell(r.p99_us, 1)
      .cell(r.p999_us, 1)
      .cell(r.frames_sent)
      .cell(r.frames_received)
      .cell(r.frames_rejected)
      .cell(r.kernel_rx_drops);
  std::cout << table.render();

  if (!telemetry_path.empty()) {
    const std::string json = reactor.telemetry_json(r).dump(2);
    if (telemetry_path == "-") {
      std::cout << json << '\n';
    } else {
      std::ofstream out(telemetry_path);
      if (!out) {
        std::cerr << "cannot write " << telemetry_path << '\n';
        return 1;
      }
      out << json << '\n';
      std::cout << "telemetry written to " << telemetry_path << '\n';
    }
  }
  return r.rings_legitimate == r.rings ? 0 : 1;
}

void usage() {
  std::cout
      << "ssring <command> [options]\n\n"
         "commands:\n"
         "  trace      print a Figure-4-style execution table\n"
         "  converge   convergence statistics from random starts "
         "(--threads W)\n"
         "  check      exhaustive model check (small n; --protocol "
         "ssrmin|dijkstra\n"
         "             --threads T --mode "
         "auto|legacy-csr|compressed|csr-free|spill\n"
         "             --phase-a auto|scalar|sliced --budget BYTES\n"
         "             --tmpdir DIR --stats)\n"
         "  modelgap   token availability under message passing\n"
         "             (--workers W shards the engine; statistics are\n"
         "             byte-identical at every W)\n"
         "  timeline   ASCII token timeline (Figures 11-13)\n"
         "  camera     camera-network policy comparison\n"
         "  mis        local mutual inclusion (MIS) on a general topology\n"
         "  markov     exact expected stabilization time (small n)\n"
         "  perturb    exhaustive single-fault recovery analysis\n"
         "  tail       delay-variance stress on the handover (E22)\n"
         "  run-threaded  real-thread runtime under a --fault-plan\n"
         "  run-udp    loopback-UDP runtime under a --fault-plan\n"
         "  run-multi  epoll-multiplexed multi-ring reactor (--rings N\n"
         "             --protocol ssrmin|dijkstra|dual|mixed --shards S\n"
         "             --transport virtual|udp --fault-plan SPEC\n"
         "             --telemetry-json F)\n"
         "\ncommon options: --n --k --seed; see tools/ssring_cli.cpp for "
         "the full per-command list.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "trace") return cmd_trace(argc, argv);
    if (cmd == "converge") return cmd_converge(argc, argv);
    if (cmd == "check") return cmd_check(argc, argv);
    if (cmd == "modelgap") return cmd_modelgap(argc, argv);
    if (cmd == "timeline") return cmd_timeline(argc, argv);
    if (cmd == "camera") return cmd_camera(argc, argv);
    if (cmd == "mis") return cmd_mis(argc, argv);
    if (cmd == "markov") return cmd_markov(argc, argv);
    if (cmd == "perturb") return cmd_perturb(argc, argv);
    if (cmd == "tail") return cmd_tail(argc, argv);
    if (cmd == "run-threaded") return cmd_run_threaded(argc, argv);
    if (cmd == "run-udp") return cmd_run_udp(argc, argv);
    if (cmd == "run-multi") return cmd_run_multi(argc, argv);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      usage();
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "unknown command: " << cmd << "\n\n";
  usage();
  return 2;
}
