#!/usr/bin/env bash
# Builds everything, runs the full test suite and regenerates every
# experiment, teeing the outputs the repository's EXPERIMENTS.md refers to.
#
# Usage: scripts/run_all.sh [--full]
#   --full   enables the larger sweeps (SSRING_BENCH_FULL=1)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--full" ]]; then
  export SSRING_BENCH_FULL=1
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  echo "==================== $(basename "$b") ====================" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

# bench_modelcheck also drops a machine-readable throughput trajectory
# (protocol, n, K, configs, threads, wall_ms) next to the text outputs.
echo "done: test_output.txt, bench_output.txt, BENCH_modelcheck.json"
