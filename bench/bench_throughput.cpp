// E12 — engine/simulator microbenchmarks (google-benchmark): cost of a
// composite-atomicity step, legitimacy checking, CST event processing and
// exhaustive model checking. These quantify the "4K states per process"
// lightweight-state claim of Theorem 1 in engineering terms: protocol
// steps are tens of nanoseconds, so the simulator sustains millions of
// daemon steps per second.
#include <benchmark/benchmark.h>

#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "dijkstra/kstate.hpp"
#include "graph/mis.hpp"
#include "graph/protocol.hpp"
#include "msgpass/factories.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "verify/checkers.hpp"
#include "wire/codec.hpp"

namespace {

using namespace ssr;

void BM_SsrMinStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto K = static_cast<std::uint32_t>(n + 1);
  const core::SsrMinRing ring(n, K);
  stab::Engine<core::SsrMinRing> engine(ring,
                                        core::canonical_legitimate(ring, 0));
  stab::CentralRoundRobinDaemon daemon;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step_with(daemon));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SsrMinStep)->Arg(8)->Arg(64)->Arg(512)->Arg(1024);

void BM_DijkstraStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto K = static_cast<std::uint32_t>(n + 1);
  const dijkstra::KStateRing ring(n, K);
  stab::Engine<dijkstra::KStateRing> engine(ring, dijkstra::KStateConfig(n));
  stab::CentralRoundRobinDaemon daemon;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step_with(daemon));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DijkstraStep)->Arg(8)->Arg(64)->Arg(512);

void BM_SsrMinSynchronousStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto K = static_cast<std::uint32_t>(n + 1);
  const core::SsrMinRing ring(n, K);
  Rng rng(5);
  stab::Engine<core::SsrMinRing> engine(ring, core::random_config(ring, rng));
  stab::SynchronousDaemon daemon;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step_with(daemon));
  }
  // Moves per second is the interesting figure under maximal concurrency.
  state.SetItemsProcessed(static_cast<std::int64_t>(engine.moves()));
}
BENCHMARK(BM_SsrMinSynchronousStep)->Arg(64)->Arg(512);

void BM_LegitimacyCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto K = static_cast<std::uint32_t>(n + 1);
  const core::SsrMinRing ring(n, K);
  const core::SsrConfig config = core::canonical_legitimate(ring, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::is_legitimate(ring, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LegitimacyCheck)->Arg(8)->Arg(64)->Arg(512);

void BM_TokenCount(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto K = static_cast<std::uint32_t>(n + 1);
  const core::SsrMinRing ring(n, K);
  Rng rng(9);
  const core::SsrConfig config = core::random_config(ring, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::privileged_count(ring, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TokenCount)->Arg(8)->Arg(64)->Arg(512);

void BM_CstEvents(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto K = static_cast<std::uint32_t>(n + 1);
  const core::SsrMinRing ring(n, K);
  msgpass::NetworkParams params;
  params.seed = 3;
  auto sim = msgpass::make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                                      params);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto stats = sim.run(10.0);
    events += stats.events;
    benchmark::DoNotOptimize(stats.events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_CstEvents)->Arg(8)->Arg(32)->Arg(128);

void BM_ModelCheckN3K4(benchmark::State& state) {
  for (auto _ : state) {
    auto checker = verify::make_ssrmin_checker(3, 4);
    const auto report = checker.run();
    benchmark::DoNotOptimize(report.worst_case_steps);
  }
  state.SetLabel("4096 configs, full distributed-daemon graph");
}
BENCHMARK(BM_ModelCheckN3K4);

void BM_WireEncodeFrame(benchmark::State& state) {
  const core::SsrState s{42, true, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_state_frame(7, s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireEncodeFrame);

void BM_WireDecodeFrame(benchmark::State& state) {
  const wire::Bytes frame =
      wire::encode_state_frame(7, core::SsrState{42, true, false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_frame(frame));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireDecodeFrame);

void BM_MisGraphStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto topo = graph::Topology::random_connected(n, 0.1, rng);
  graph::TurauMis mis(topo);
  graph::GraphEngine<graph::TurauMis> engine(mis,
                                             graph::random_config(topo, rng));
  stab::SynchronousDaemon daemon;
  for (auto _ : state) {
    if (!engine.step_with(daemon)) {
      // Silent: perturb a node to keep the benchmark busy.
      engine.corrupt(rng.below(n),
                     graph::MisState{static_cast<graph::MisStatus>(
                         rng.below(3))});
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MisGraphStep)->Arg(32)->Arg(256);

void BM_ConvergenceFromRandom(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto K = static_cast<std::uint32_t>(n + 1);
  const core::SsrMinRing ring(n, K);
  Rng rng(31);
  for (auto _ : state) {
    stab::Engine<core::SsrMinRing> engine(ring,
                                          core::random_config(ring, rng));
    stab::CentralRandomDaemon daemon{rng.split()};
    auto legit = [&ring](const core::SsrConfig& c) {
      return core::is_legitimate(ring, c);
    };
    const auto r = stab::run_until(engine, daemon, legit, 80ULL * n * n + 400);
    benchmark::DoNotOptimize(r.steps);
  }
}
BENCHMARK(BM_ConvergenceFromRandom)->Arg(8)->Arg(32);

}  // namespace
