// E19 — handover anatomy in the message-passing model: how long do the
// two-holder overlap windows last, how long does one revolution take, and
// how evenly are activations spaced per node? These are the quantities a
// deployment engineer would size duty cycles with; they also make
// Theorem 3 quantitative: the overlap window is the price of never going
// dark.
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

struct HandoverObserver {
  explicit HandoverObserver(std::size_t n)
      : last_activation(n, -1.0), was_active(n, false) {}

  void observe(msgpass::Time from, msgpass::Time to,
               const std::vector<bool>& holders) {
    std::size_t count = 0;
    for (bool b : holders)
      if (b) ++count;
    const double dt = to - from;
    if (count >= 2) {
      overlap_time += dt;
      if (!in_overlap) {
        in_overlap = true;
        overlap_start = from;
      }
    } else if (in_overlap) {
      in_overlap = false;
      overlap_durations.add(from - overlap_start);
    }
    for (std::size_t i = 0; i < holders.size(); ++i) {
      if (holders[i] && !was_active[i]) {
        if (last_activation[i] >= 0.0) {
          inter_activation.add(from - last_activation[i]);
        }
        last_activation[i] = from;
      }
      was_active[i] = holders[i];
    }
    total_time += dt;
  }

  double total_time = 0.0;
  double overlap_time = 0.0;
  bool in_overlap = false;
  double overlap_start = 0.0;
  SampleSet overlap_durations;
  SampleSet inter_activation;
  std::vector<double> last_activation;
  std::vector<bool> was_active;
};

}  // namespace

int main() {
  bench::print_header(
      "E19: handover anatomy", "quantifies Theorem 3 / Figure 13",
      "two-holder overlap windows are short and bounded; activations are "
      "evenly spaced (period ~ one revolution)");

  TextTable table({"n", "delay", "overlap % of time", "mean overlap",
                   "p95 overlap", "mean revolution", "p95 revolution",
                   "revolution / (n * hop)"});

  const std::vector<std::size_t> sizes =
      bench::full_mode() ? std::vector<std::size_t>{5, 10, 20, 40}
                         : std::vector<std::size_t>{5, 10, 20};
  for (std::size_t n : sizes) {
    for (double delay : {1.0, 3.0}) {
      core::SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
      msgpass::NetworkParams net;
      net.delay_min = 0.5 * delay;
      net.delay_max = delay;
      net.refresh_interval = 8.0 * delay;
      net.seed = 17;
      auto sim = msgpass::make_ssrmin_cst(
          ring, core::canonical_legitimate(ring, 0), net);
      HandoverObserver obs(n);
      sim.set_observer([&obs](msgpass::Time from, msgpass::Time to,
                              const std::vector<bool>& holders) {
        obs.observe(from, to, holders);
      });
      sim.run(bench::full_mode() ? 30000.0 : 9000.0);

      // One hop of the inchworm costs ~3 rule executions, each needing a
      // message (~0.75 * delay mean) plus service time (~0.65); one
      // revolution is n hops.
      const double hop_estimate = 3.0 * (0.75 * delay + 0.65);
      table.row()
          .cell(n)
          .cell(delay, 1)
          .cell(100.0 * obs.overlap_time / obs.total_time, 2)
          .cell(obs.overlap_durations.empty() ? 0.0
                                              : obs.overlap_durations.mean(),
                2)
          .cell(obs.overlap_durations.empty()
                    ? 0.0
                    : obs.overlap_durations.percentile(95),
                2)
          .cell(obs.inter_activation.empty() ? 0.0
                                             : obs.inter_activation.mean(),
                1)
          .cell(obs.inter_activation.empty()
                    ? 0.0
                    : obs.inter_activation.percentile(95),
                1)
          .cell(obs.inter_activation.empty()
                    ? 0.0
                    : obs.inter_activation.mean() /
                          (static_cast<double>(n) * hop_estimate),
                2);
    }
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "handover");
  std::cout << "reading: overlap windows track the link delay (they exist "
               "exactly while an acknowledgment is in flight); the "
               "inter-activation period scales linearly with n and with "
               "the per-hop cost — every camera gets its duty turn once "
               "per revolution.\n";
  return 0;
}
