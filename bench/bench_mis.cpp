// E18 — general topologies (the paper's §6 future work): self-stabilizing
// maximal independent set as *local* mutual inclusion on arbitrary graphs,
// exhaustively verified per topology, plus the design-space comparison the
// camera application cares about: static/silent MIS duty (always the same
// nodes active) vs SSRmin's rotating token (fair duty, ring-only).
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "graph/check.hpp"
#include "graph/cst.hpp"
#include "graph/protocol.hpp"
#include "inclusion/camera.hpp"
#include "stabilizing/daemon.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssr;
  bench::print_header(
      "E18: local mutual inclusion on general topologies",
      "paper §6 future work; references [10], [14]",
      "a self-stabilizing MIS is a dominating set: every closed "
      "neighborhood always has an active node once stable — local mutual "
      "inclusion on any graph, at the price of static (unfair) duty");

  // Exhaustive verification per topology.
  std::cout << "--- exhaustive verification (all 3^n configurations, full "
               "distributed daemon) ---\n";
  TextTable verify_table({"topology", "n", "configs", "stable MIS configs",
                          "fixpoints sound", "fixpoints complete",
                          "convergence", "worst steps"});
  Rng rng(5);
  std::vector<std::pair<std::string, graph::Topology>> topologies;
  topologies.emplace_back("ring5", graph::Topology::ring(5));
  topologies.emplace_back("ring7", graph::Topology::ring(7));
  topologies.emplace_back("path7", graph::Topology::path(7));
  topologies.emplace_back("star7", graph::Topology::star(7));
  topologies.emplace_back("complete6", graph::Topology::complete(6));
  topologies.emplace_back("grid2x4", graph::Topology::grid(2, 4));
  topologies.emplace_back("random8",
                          graph::Topology::random_connected(8, 0.3, rng));
  for (const auto& [name, topo] : topologies) {
    auto checker = graph::make_mis_checker(topo);
    const auto report = checker.run();
    verify_table.row()
        .cell(name)
        .cell(topo.size())
        .cell(report.total_configs)
        .cell(report.silent_configs)
        .cell(report.fixpoints_sound)
        .cell(report.fixpoints_complete)
        .cell(report.convergence_holds)
        .cell(report.worst_case_steps);
  }
  std::cout << verify_table.render() << '\n';
  bench::maybe_export(verify_table, "mis_verify");

  // Convergence scaling on larger random graphs.
  std::cout << "--- randomized convergence, larger graphs ---\n";
  TextTable conv({"n", "edge prob", "trials", "mean steps", "max steps",
                  "mean |MIS| / n"});
  const int trials = bench::full_mode() ? 40 : 15;
  for (std::size_t n : {16u, 32u, 64u}) {
    for (double p : {0.05, 0.2}) {
      SampleSet steps;
      double mis_fraction = 0.0;
      Rng trial_rng(100 + n);
      for (int t = 0; t < trials; ++t) {
        const auto topo = graph::Topology::random_connected(n, p, trial_rng);
        graph::TurauMis mis(topo);
        graph::GraphEngine<graph::TurauMis> engine(
            mis, graph::random_config(topo, trial_rng));
        stab::RandomSubsetDaemon daemon{trial_rng.split(), 0.5};
        const auto result = graph::run_to_silence(engine, daemon, 1000000);
        if (!result.has_value()) continue;
        steps.add(static_cast<double>(*result));
        mis_fraction +=
            static_cast<double>(graph::mis_members(engine.config()).size()) /
            static_cast<double>(n);
      }
      conv.row()
          .cell(n)
          .cell(p, 2)
          .cell(trials)
          .cell(steps.mean(), 1)
          .cell(steps.max(), 0)
          .cell(mis_fraction / trials, 3);
    }
  }
  std::cout << conv.render() << '\n';
  bench::maybe_export(conv, "mis_convergence");

  // Design-space comparison on the ring: rotating token vs static MIS.
  std::cout << "--- ring duty: rotating token (SSRmin) vs static MIS ---\n";
  TextTable duty({"scheme", "n", "coverage guarantee", "mean active nodes",
                  "duty fairness (Jain)", "moves after stabilization"});
  for (std::size_t n : {9u, 15u}) {
    {
      incl::CameraParams params;
      params.node_count = n;
      params.duration = 2000.0;
      params.net.seed = 3;
      const auto r = incl::run_camera(incl::CameraPolicy::kSsrMin, params);
      duty.row()
          .cell("ssrmin (rotating)")
          .cell(n)
          .cell("global (>=1 anywhere)")
          .cell(r.mean_active, 2)
          .cell(r.duty_fairness, 3)
          .cell("circulates forever");
    }
    {
      Rng mis_rng(42);
      const auto topo = graph::Topology::ring(n);
      graph::TurauMis mis(topo);
      graph::GraphEngine<graph::TurauMis> engine(
          mis, graph::random_config(topo, mis_rng));
      stab::CentralRandomDaemon daemon{mis_rng.split()};
      const auto steps = graph::run_to_silence(engine, daemon, 100000);
      const auto members = graph::mis_members(engine.config());
      std::vector<double> active_time(n, 0.0);
      for (std::size_t m : members) active_time[m] = 1.0;
      duty.row()
          .cell("mis (static)")
          .cell(n)
          .cell("local (every N[i])")
          .cell(members.size())
          .cell(incl::jain_fairness(active_time), 3)
          .cell(steps.has_value() ? "silent (0 moves)" : "did not stabilize");
    }
  }
  std::cout << duty.render() << '\n';
  bench::maybe_export(duty, "mis_duty");

  // Event-driven message passing: stabilization time under CST with loss.
  std::cout << "--- event-driven CST (message passing) stabilization ---\n";
  TextTable cst({"n", "loss", "trials converged", "mean stab. time",
                 "p95 stab. time"});
  Rng cst_rng(71);
  for (std::size_t n : {8u, 16u}) {
    for (double loss : {0.0, 0.2}) {
      SampleSet times;
      int converged = 0;
      for (int t = 0; t < trials; ++t) {
        const auto topo = graph::Topology::random_connected(n, 0.2, cst_rng);
        graph::TurauMis mis(topo);
        msgpass::NetworkParams net;
        net.loss_probability = loss;
        net.seed = cst_rng();
        auto active = [](std::size_t, const graph::MisState& self,
                         std::span<const graph::MisState>) {
          return self.status == graph::MisStatus::kIn;
        };
        graph::GraphCstSimulation<graph::TurauMis> sim(
            std::move(mis), graph::random_config(topo, cst_rng), active, net);
        bool settled = false;
        auto stop = [&topo](const graph::GraphCstSimulation<graph::TurauMis>& s) {
          return s.coherent() && graph::is_stable_mis(topo, s.global_config());
        };
        sim.run_until(stop, 100000.0, &settled);
        if (settled) {
          ++converged;
          times.add(sim.now());
        }
      }
      cst.row()
          .cell(n)
          .cell(loss, 1)
          .cell(std::to_string(converged) + "/" + std::to_string(trials))
          .cell(times.empty() ? 0.0 : times.mean(), 1)
          .cell(times.empty() ? 0.0 : times.percentile(95), 1);
    }
  }
  std::cout << cst.render() << '\n';
  bench::maybe_export(cst, "mis_cst");
  std::cout
      << "reading: the MIS gives the *stronger* local guarantee on any "
         "topology and then never moves again (minimal control traffic), "
         "but pins ~n/3 nodes active forever (fairness ~ |MIS|/n). SSRmin "
         "keeps only 1-2 nodes active and rotates the burden evenly — the "
         "right choice for the paper's energy-harvesting cameras.\n";
  return 0;
}
