// E22 — the delay-variance boundary of Theorem 3 (finding F1 made
// quantitative): sweep the delay distribution and measure token-
// extinction windows of SSRmin under CST from a legitimate, coherent
// start over one-in-flight FIFO links.
//
// Mechanism (found by tracing the first zero instant): a state message
// carrying <rts = 1> from the successor's previous tenure arrives after
// the token lapped the ring; the holder's Rule 4 repair guard matches the
// stale view and destroys both tokens. This requires one message to stay
// in transit longer than the fastest possible handshake lap — so delay
// VARIANCE relative to the lap time is the control parameter: extreme
// bounded variance on the smallest ring already shows rare windows, an
// exponential tail shows them at a measurable rate, and growing the ring
// (longer laps) suppresses the effect exponentially.
//
// Each (n, scenario) cell is one long event-driven simulation with its
// own fixed seed; the cells fan out as units over sim::TrialSweep
// (--threads / SSRING_BENCH_THREADS) and return in cell order, so the
// table is bit-identical at any worker count.
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  bench::print_header(
      "E22: delay-variance stress on the graceful handover",
      "boundary of Theorem 3 (finding F1)",
      "moderate delay variance preserves >= 1 holder exactly; extreme "
      "variance or heavy tails open rare zero-token windows (stale rts=1 "
      "triggers the Rule-4 repair), shrinking with ring size");

  const double duration = bench::full_mode() ? 2000000.0 : 400000.0;
  // The `batched` column is honest: these cells are event-driven CST runs
  // with no bit-sliced form, so it is always "no" — downstream row checks
  // must not mistake this table for a Monte-Carlo bench that silently
  // dropped its batched engine.
  TextTable table({"delay model", "n", "mean delay", "coverage %",
                   "zero intervals", "mean gap", "zero per 1k handovers",
                   "handovers", "batched"});

  struct Scenario {
    const char* name;
    double delay_min;
    double delay_max;
    msgpass::DelayModel model;
  };
  const Scenario scenarios[] = {
      {"uniform, max/min=3", 0.5, 1.5, msgpass::DelayModel::kUniform},
      {"uniform, max/min=61", 0.05, 3.05, msgpass::DelayModel::kUniform},
      {"exponential tail", 0.05, 3.05,
       msgpass::DelayModel::kExponentialTail},
  };
  const std::size_t ns[] = {3, 5, 8};
  struct Cell {
    std::size_t n;
    const Scenario* scenario;
  };
  std::vector<Cell> cells;
  for (std::size_t n : ns) {
    for (const Scenario& sc : scenarios) cells.push_back({n, &sc});
  }

  sim::TrialSweep sweep({.threads = bench::thread_count(argc, argv)});
  std::cout << "(sweep workers: " << sweep.threads() << ")\n";
  // Accepts --batched for CLI uniformity with the Monte-Carlo benches, but
  // the cells here are event-driven CST message-passing runs with per-event
  // RNG interleavings — there is no bit-sliced form of that metric, so the
  // scalar simulator always runs.
  if (bench::batched_mode(argc, argv)) {
    std::cout << "(--batched: event-driven CST cells have no bit-sliced "
                 "form; using the scalar simulator)\n";
  }
  std::cout << '\n';
  const auto results = sweep.map(cells.size(), [&](std::uint64_t i) {
    const auto [n, sc] = cells[i];
    core::SsrMinRing ring(n, static_cast<std::uint32_t>(n + 1));
    msgpass::NetworkParams p;
    p.delay_min = sc->delay_min;
    p.delay_max = sc->delay_max;
    p.delay_model = sc->model;
    p.service_min = 0.05;
    p.service_max = 0.1;
    p.refresh_interval = 40.0;
    p.seed = 11;
    auto sim = msgpass::make_ssrmin_cst(
        ring, core::canonical_legitimate(ring, 0), p);
    return sim.run(duration);
  });

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto [n, sc] = cells[i];
    const msgpass::CoverageStats& s = results[i];
    const double mean_gap =
        s.zero_intervals > 0
            ? s.zero_token_time / static_cast<double>(s.zero_intervals)
            : 0.0;
    table.row()
        .cell(sc->name)
        .cell(n)
        .cell(sc->delay_min +
                  (sc->delay_max - sc->delay_min) *
                      (sc->model == msgpass::DelayModel::kUniform ? 0.5
                                                                  : 1.0),
              2)
        .cell(100.0 * s.coverage(), 4)
        .cell(s.zero_intervals)
        .cell(mean_gap, 2)
        .cell(s.handovers > 0
                  ? 1000.0 * static_cast<double>(s.zero_intervals) /
                        static_cast<double>(s.handovers)
                  : 0.0,
              3)
        .cell(s.handovers)
        .cell("no");
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "tail");
  std::cout
      << "reading: moderate-variance rows are exact zeros — Theorem 3 in "
         "its stated regime. Extreme variance / unbounded tails quantify "
         "the freshness assumption the proof makes implicitly: one slow "
         "message overlapping a fast handshake lap lets the stale rts=1 "
         "fire the Rule-4 repair at the holder. Larger rings (longer "
         "laps) suppress the effect exponentially.\n";
  return 0;
}
