// E23 — Figures 11-13 under a *shared adversarial fault plan*: the same
// seeded schedule (background loss + a full-ring burst + a directional
// link failure + a ring partition) is replayed against SSRmin, Dijkstra's
// K-state ring and the dual-Dijkstra construction on the deterministic
// CST simulator, and the runtime::Telemetry layer integrates who held a
// token when.
//
//   Fig. 11 analogue: Dijkstra loses its only token during every handover
//                     and every fault window — nonzero zero-holder dwell;
//   Fig. 12 analogue: dual Dijkstra still hits zero-holder instants when
//                     both tokens are in flight or suppressed;
//   Fig. 13 / Thm 3:  SSRmin started legitimate with coherent caches keeps
//                     min_holders >= 1 through the whole schedule (the
//                     plan deliberately contains no crash window — a state
//                     wipe is outside Theorem 3's fault model).
//
// The telemetry JSON is a pure function of (seed, plan): this binary runs
// SSRmin twice and verifies the exports are bit-identical, then writes all
// three runs to BENCH_faults.json (skipped under --smoke, which CI runs).
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "dijkstra/dual.hpp"
#include "msgpass/factories.hpp"
#include "runtime/telemetry.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

constexpr std::uint64_t kSeed = 11;

msgpass::NetworkParams net(const runtime::FaultPlan& plan) {
  msgpass::NetworkParams p;
  p.delay_min = 0.5;
  p.delay_max = 1.5;
  p.refresh_interval = 8.0;
  p.service_min = 0.4;
  p.service_max = 0.9;
  p.seed = kSeed;
  p.fault_plan = plan;
  return p;
}

/// Runs one simulation, feeding every inter-event holder interval into a
/// Telemetry recorder. Returns the recorder.
template <typename Sim>
runtime::Telemetry run_with_telemetry(Sim& sim, const std::string& algo,
                                      const runtime::FaultPlan& plan,
                                      double duration_ticks) {
  runtime::Telemetry telemetry(sim.size());
  telemetry.set_context("cst-sim", algo, kSeed);
  telemetry.set_plan(plan);
  const double scale = 1000.0;  // NetworkParams::microseconds_per_tick
  sim.set_observer([&telemetry, scale](msgpass::Time from, msgpass::Time /*to*/,
                                       const std::vector<bool>& holders) {
    telemetry.observe(from * scale, holders);
  });
  const msgpass::CoverageStats stats = sim.run(duration_ticks);
  telemetry.finish(sim.fault_clock_us());
  telemetry.set_aggregates(stats.transmissions, stats.losses,
                           stats.deliveries, stats.rule_executions);
  return telemetry;
}

void add_row(TextTable& table, const std::string& algo,
             const runtime::Telemetry& t) {
  std::size_t recovered = 0;
  for (const auto& w : t.window_outcomes()) {
    if (w.recovered) ++recovered;
  }
  table.row()
      .cell(algo)
      .cell(t.min_holders())
      .cell(t.max_holders())
      .cell(t.zero_holder_dwell_us() / 1000.0, 2)
      .cell(t.zero_intervals())
      .cell(t.handovers())
      .cell(recovered)
      .cell(t.window_outcomes().size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_faults.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }

  bench::print_header(
      "E24: token availability under a shared adversarial fault plan",
      "Figures 11-13; Theorems 3 and 4",
      "replaying one seeded fault schedule against all three algorithms: "
      "SSRmin keeps min_holders >= 1; Dijkstra and dual Dijkstra do not");

  // No crash window: a state wipe can legitimately remove the only holder
  // and is outside Theorem 3's fault model (see EXPERIMENTS.md).
  const std::string spec =
      smoke ? "drop=0.05;burst@100ms-160ms"
            : "drop=0.05;burst@1500ms-2000ms;linkdown@3s-3500ms:link=1->2;"
              "partition@4500ms-5000ms:cut=0/2";
  const double duration = smoke ? 400.0 : 6000.0;  // ticks of 1ms fault time
  const std::size_t n = 5;
  const auto K = static_cast<std::uint32_t>(n + 1);
  const runtime::FaultPlan plan = runtime::FaultPlan::parse(spec);
  std::cout << "fault plan: " << plan.describe() << "\n\n";

  TextTable table({"algorithm", "min holders", "max holders",
                   "zero dwell (ms)", "zero intervals", "handovers",
                   "windows recovered", "windows"});

  core::SsrMinRing ssr_ring(n, K);
  auto ssr_sim = msgpass::make_ssrmin_cst(
      ssr_ring, core::canonical_legitimate(ssr_ring, 0), net(plan));
  const runtime::Telemetry ssr_t =
      run_with_telemetry(ssr_sim, "ssrmin", plan, duration);
  add_row(table, "ssrmin (Fig.13)", ssr_t);

  dijkstra::KStateRing dij_ring(n, K);
  auto dij_sim = msgpass::make_kstate_cst(dij_ring, dijkstra::KStateConfig(n),
                                          net(plan));
  const runtime::Telemetry dij_t =
      run_with_telemetry(dij_sim, "dijkstra", plan, duration);
  add_row(table, "dijkstra (Fig.11)", dij_t);

  dijkstra::DualKStateRing dual_ring(n, K);
  dijkstra::DualConfig dual_init(n);
  for (std::size_t i = 0; i < n; ++i) dual_init[i].b = (i < n / 2) ? 1 : 0;
  auto dual_sim = msgpass::make_dual_cst(dual_ring, dual_init, net(plan));
  const runtime::Telemetry dual_t =
      run_with_telemetry(dual_sim, "dual dijkstra", plan, duration);
  add_row(table, "2x dijkstra (Fig.12)", dual_t);

  std::cout << table.render() << '\n';

  // Determinism check: the telemetry export is a pure function of
  // (seed, plan) — replay SSRmin and compare byte for byte.
  auto replay = msgpass::make_ssrmin_cst(
      ssr_ring, core::canonical_legitimate(ssr_ring, 0), net(plan));
  const runtime::Telemetry ssr_t2 =
      run_with_telemetry(replay, "ssrmin", plan, duration);
  const bool deterministic =
      ssr_t.to_json_string() == ssr_t2.to_json_string();

  const bool graceful = ssr_t.min_holders() >= 1;
  const bool dij_gap = dij_t.zero_holder_dwell_us() > 0.0;
  const bool dual_gap = dual_t.zero_holder_dwell_us() > 0.0;
  std::cout << "ssrmin min_holders >= 1 under the plan: "
            << (graceful ? "yes" : "NO — Theorem 3 violated") << '\n'
            << "dijkstra has zero-holder dwell: " << (dij_gap ? "yes" : "no")
            << '\n'
            << "dual dijkstra has zero-holder dwell: "
            << (dual_gap ? "yes" : "no") << '\n'
            << "telemetry replay bit-identical: "
            << (deterministic ? "yes" : "NO") << '\n';

  if (!smoke) {
    Json out = Json::object();
    out.set("schema", "ssr-bench-faults-v1");
    out.set("fault_plan", plan.describe());
    out.set("duration_ticks", duration);
    out.set("seed", kSeed);
    Json runs = Json::array();
    runs.push(ssr_t.to_json());
    runs.push(dij_t.to_json());
    runs.push(dual_t.to_json());
    out.set("runs", std::move(runs));
    std::ofstream file(out_path);
    file << out.dump(2) << '\n';
    std::cout << "(wrote " << out_path << ")\n";
  }
  return (graceful && deterministic) ? 0 : 1;
}
