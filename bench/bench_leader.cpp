// E21 — leader election on id-based rings: discharges SSRmin's
// "distinguished bottom process" assumption (paper §2.3). Exhaustive
// verification per id assignment, convergence scaling, and the
// ghost-leader starvation time.
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "elect/leader.hpp"
#include "graph/protocol.hpp"
#include "stabilizing/daemon.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssr;
  bench::print_header(
      "E21: leader election (bottom-process bootstrap)",
      "discharges the distinguished-process assumption of §2.3",
      "minimum-id election with hop counters stabilizes from any state; "
      "ghost leaders starve within one saturation lap");

  std::cout << "--- exhaustive verification (all ((max_id+1)*n)^n "
               "configurations) ---\n";
  TextTable verify_table({"ids", "configs", "fixpoints", "sound", "complete",
                          "convergence", "worst steps"});
  const std::vector<std::vector<std::uint32_t>> assignments{
      {0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
  for (const auto& ids : assignments) {
    auto checker = elect::make_leader_checker(ids);
    const auto report = checker.run();
    std::string name;
    for (auto id : ids) name += std::to_string(id);
    verify_table.row()
        .cell(name)
        .cell(report.total_configs)
        .cell(report.silent_configs)
        .cell(report.fixpoints_sound)
        .cell(report.fixpoints_complete)
        .cell(report.convergence_holds)
        .cell(report.worst_case_steps);
  }
  std::cout << verify_table.render() << '\n';
  bench::maybe_export(verify_table, "leader_verify");

  std::cout << "--- randomized convergence scaling ---\n";
  TextTable conv({"n", "trials", "mean steps", "p95 steps", "max steps",
                  "steps / n"});
  const int trials = bench::full_mode() ? 40 : 15;
  Rng rng(61);
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    SampleSet steps;
    for (int t = 0; t < trials; ++t) {
      std::vector<std::uint32_t> ids(n);
      std::iota(ids.begin(), ids.end(), 0u);
      rng.shuffle(ids);
      const elect::MinIdLeader ring(ids);
      graph::GraphEngine<elect::MinIdLeader> engine(
          ring, elect::random_config(ring, rng));
      stab::RandomSubsetDaemon daemon{rng.split(), 0.5};
      const auto result = graph::run_to_silence(engine, daemon, 1000000);
      if (result.has_value()) steps.add(static_cast<double>(*result));
    }
    conv.row()
        .cell(n)
        .cell(trials)
        .cell(steps.mean(), 1)
        .cell(steps.percentile(95), 1)
        .cell(steps.max(), 0)
        .cell(steps.mean() / static_cast<double>(n), 2);
  }
  std::cout << conv.render() << '\n';
  bench::maybe_export(conv, "leader_convergence");

  std::cout << "--- ghost-leader starvation ---\n";
  TextTable ghost({"n", "trials", "mean kill steps", "max kill steps"});
  for (std::size_t n : {8u, 16u, 32u}) {
    SampleSet steps;
    for (int t = 0; t < trials; ++t) {
      std::vector<std::uint32_t> ids(n);
      for (std::size_t i = 0; i < n; ++i)
        ids[i] = static_cast<std::uint32_t>(i + 10);
      rng.shuffle(ids);
      const elect::MinIdLeader ring(ids);
      elect::LeaderConfig config = elect::legitimate_config(ring);
      // Plant a ghost id 0 (< every real id) at a random node.
      config[rng.below(n)] = elect::LeaderState{0, 0};
      graph::GraphEngine<elect::MinIdLeader> engine(ring, config);
      stab::CentralRandomDaemon daemon{rng.split()};
      const auto result = graph::run_to_silence(engine, daemon, 1000000);
      if (result.has_value()) steps.add(static_cast<double>(*result));
    }
    ghost.row()
        .cell(n)
        .cell(trials)
        .cell(steps.mean(), 1)
        .cell(steps.max(), 0);
  }
  std::cout << ghost.render() << '\n';
  bench::maybe_export(ghost, "leader_ghost");
  std::cout << "reading: convergence is linear in n (each correction wave "
               "travels once around); a ghost costs about one extra "
               "saturation lap before its distance counter hits n.\n";
  return 0;
}
