// E16 — the synchronous-round execution model (reference [17]'s WSN
// setting): convergence rounds vs execution probability and loss rate,
// and token availability of SSRmin vs Dijkstra between rounds.
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssr;
  bench::print_header(
      "E16: synchronous-round (WSN) execution",
      "paper references [5, 7, 16, 17] — transformed executions",
      "SSRmin stabilizes in the round model across execution probabilities "
      "and loss rates, and keeps 1..2 holders between rounds afterwards");

  const std::size_t n = bench::full_mode() ? 16 : 8;
  const auto K = static_cast<std::uint32_t>(n + 1);
  const int trials = bench::full_mode() ? 30 : 12;
  core::SsrMinRing ring(n, K);

  TextTable table({"exec prob", "loss", "converged", "mean rounds",
                   "p95 rounds", "post holders min", "post holders max"});
  for (double exec_p : {1.0, 0.7, 0.4}) {
    for (double loss : {0.0, 0.1, 0.3}) {
      SampleSet rounds;
      int converged = 0;
      std::size_t post_min = SIZE_MAX;
      std::size_t post_max = 0;
      Rng seeds(31 + static_cast<std::uint64_t>(exec_p * 10) +
                static_cast<std::uint64_t>(loss * 100));
      for (int t = 0; t < trials; ++t) {
        msgpass::RoundParams params;
        params.exec_probability = exec_p;
        params.loss = loss;
        params.seed = seeds();
        Rng rng = seeds.split();
        auto sim =
            msgpass::make_ssrmin_rounds(ring, core::random_config(ring, rng),
                                        params);
        sim.randomize_caches([K](Rng& r) {
          core::SsrState s;
          s.x = static_cast<std::uint32_t>(r.below(K));
          s.rts = r.bernoulli(0.5);
          s.tra = r.bernoulli(0.5);
          return s;
        });
        auto legit = [&ring](const core::SsrConfig& c) {
          return core::is_legitimate(ring, c);
        };
        const auto result = sim.run_until(legit, 500000);
        if (!result.has_value()) continue;
        ++converged;
        rounds.add(static_cast<double>(*result));
        // Post-stabilization: observe holder counts for a while.
        for (int w = 0; w < 100; ++w) {
          const std::size_t h = sim.holder_count();
          post_min = std::min(post_min, h);
          post_max = std::max(post_max, h);
          sim.step();
        }
      }
      table.row()
          .cell(exec_p, 1)
          .cell(loss, 1)
          .cell(std::to_string(converged) + "/" + std::to_string(trials))
          .cell(rounds.empty() ? 0.0 : rounds.mean(), 1)
          .cell(rounds.empty() ? 0.0 : rounds.percentile(95), 1)
          .cell(post_min == SIZE_MAX ? 0 : post_min)
          .cell(post_max);
    }
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "rounds");
  std::cout << "expectation: every cell converges; lower execution "
               "probability / higher loss cost more rounds; post-"
               "stabilization holder counts stay in [1, 2].\n";
  return 0;
}
