// E1 — Figure 4: regenerate the paper's 16-step execution table of SSRmin
// with five processes (n = 5, K = 6, start (3.0.1, 3.0.0, ..., 3.0.0)) and
// diff it cell-by-cell against the published table.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "stabilizing/trace.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

// The table exactly as printed in the paper (Figure 4).
constexpr std::array<std::array<const char*, 5>, 16> kPaperFigure4 = {{
    {"3.0.1PS/1", "3.0.0", "3.0.0", "3.0.0", "3.0.0"},
    {"3.1.0PS", "3.0.0/3", "3.0.0", "3.0.0", "3.0.0"},
    {"3.1.0P/2", "3.0.1S", "3.0.0", "3.0.0", "3.0.0"},
    {"4.0.0", "3.0.1PS/1", "3.0.0", "3.0.0", "3.0.0"},
    {"4.0.0", "3.1.0PS", "3.0.0/3", "3.0.0", "3.0.0"},
    {"4.0.0", "3.1.0P/2", "3.0.1S", "3.0.0", "3.0.0"},
    {"4.0.0", "4.0.0", "3.0.1PS/1", "3.0.0", "3.0.0"},
    {"4.0.0", "4.0.0", "3.1.0PS", "3.0.0/3", "3.0.0"},
    {"4.0.0", "4.0.0", "3.1.0P/2", "3.0.1S", "3.0.0"},
    {"4.0.0", "4.0.0", "4.0.0", "3.0.1PS/1", "3.0.0"},
    {"4.0.0", "4.0.0", "4.0.0", "3.1.0PS", "3.0.0/3"},
    {"4.0.0", "4.0.0", "4.0.0", "3.1.0P/2", "3.0.1S"},
    {"4.0.0", "4.0.0", "4.0.0", "4.0.0", "3.0.1PS/1"},
    {"4.0.0/3", "4.0.0", "4.0.0", "4.0.0", "3.1.0PS"},
    {"4.0.1S", "4.0.0", "4.0.0", "4.0.0", "3.1.0P/2"},
    {"4.0.1PS/1", "4.0.0", "4.0.0", "4.0.0", "4.0.0"},
}};

std::string cell(const core::SsrMinRing& ring,
                 const stab::Engine<core::SsrMinRing>& engine, std::size_t i) {
  const auto& config = engine.config();
  const std::size_t n = config.size();
  std::string out = core::format_state(config[i]);
  if (ring.holds_primary(i, config[i], config[stab::pred_index(i, n)]))
    out += 'P';
  if (ring.holds_secondary(config[i], config[stab::succ_index(i, n)]))
    out += 'S';
  const int rule = engine.enabled_rule(i);
  if (rule != stab::kDisabled) out += "/" + std::to_string(rule);
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "E1: Figure 4 execution trace", "Figure 4",
      "the published 16-step trace of SSRmin (n=5, K=6) is reproduced "
      "cell-for-cell");

  const core::SsrMinRing ring(5, 6);
  stab::Engine<core::SsrMinRing> engine(ring,
                                        core::canonical_legitimate(ring, 3));

  TextTable table({"Step", "P0", "P1", "P2", "P3", "P4", "matches paper"});
  std::size_t mismatches = 0;
  for (std::size_t step = 0; step < kPaperFigure4.size(); ++step) {
    table.row();
    table.cell(step + 1);
    bool row_ok = true;
    for (std::size_t i = 0; i < 5; ++i) {
      const std::string c = cell(ring, engine, i);
      table.cell(c);
      if (c != kPaperFigure4[step][i]) {
        row_ok = false;
        ++mismatches;
      }
    }
    table.cell(row_ok);
    engine.step(engine.enabled_indices());
  }
  std::cout << table.render() << '\n';
  std::cout << "cells diffed against the paper: "
            << kPaperFigure4.size() * 5 << ", mismatches: " << mismatches
            << (mismatches == 0 ? "  [REPRODUCED]" : "  [DIVERGED]") << "\n";
  return mismatches == 0 ? 0 : 1;
}
