// E14 — ablations of SSRmin design choices:
//
//  (a) the secondary-token condition (paper §3.1): the full condition
//      "tra = 1 OR (rts = 1 AND successor shows <0.0>)" vs the rejected
//      weak condition "tra = 1". Measured along identical CST executions:
//      the weak secondary token goes extinct for a large fraction of the
//      run; the full one exists at every instant.
//  (b) modulus sensitivity: K = n+1 (minimal) vs larger K — convergence
//      cost is essentially K-independent, only the state space grows
//      (Theorem 1's 4K states/process).
//  (c) CST refresh-interval sensitivity under loss: sparser refresh slows
//      recovery but never breaks it (Lemma 9 is interval-independent).
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

void ablate_secondary_condition() {
  std::cout << "--- (a) secondary-token condition: full vs weak (tra-only) "
               "---\n";
  TextTable table({"condition", "n", "secondary extinct %",
                   "extinct intervals", "node coverage %", "min holders",
                   "max holders"});
  for (std::size_t n : {5u, 10u}) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    core::SsrMinRing ring(n, K);
    msgpass::NetworkParams params;
    params.seed = 77;
    const double duration = 4000.0;
    for (bool strong : {true, false}) {
      auto sec = msgpass::make_ssrmin_secondary_only_cst(
          ring, core::canonical_legitimate(ring, 0), params, strong);
      const auto sec_stats = sec.run(duration);
      auto cov = strong ? msgpass::make_ssrmin_cst(
                              ring, core::canonical_legitimate(ring, 0), params)
                        : msgpass::make_ssrmin_weak_cst(
                              ring, core::canonical_legitimate(ring, 0), params);
      const auto cov_stats = cov.run(duration);
      table.row()
          .cell(strong ? "full (paper)" : "weak (tra only)")
          .cell(n)
          .cell(100.0 * (1.0 - sec_stats.coverage()), 2)
          .cell(sec_stats.zero_intervals)
          .cell(100.0 * cov_stats.coverage(), 2)
          .cell(cov_stats.min_holders)
          .cell(cov_stats.max_holders);
    }
  }
  std::cout << table.render()
            << "paper expectation (§3.1): the weak secondary token "
               "\"extincts when two tokens are virtually located at the "
               "same process\" — extinct % is large for the weak condition "
               "and exactly 0 for the full one.\n\n";
}

void ablate_modulus() {
  std::cout << "--- (b) modulus K sensitivity ---\n";
  TextTable table({"n", "K", "states/process (4K)", "mean steps",
                   "max steps", "mean/n^2"});
  const int trials = bench::full_mode() ? 40 : 15;
  for (std::size_t n : {8u, 16u}) {
    for (std::uint32_t K :
         {static_cast<std::uint32_t>(n + 1), static_cast<std::uint32_t>(2 * n),
          static_cast<std::uint32_t>(4 * n)}) {
      core::SsrMinRing ring(n, K);
      SampleSet steps;
      Rng rng(99 + n + K);
      for (int t = 0; t < trials; ++t) {
        stab::Engine<core::SsrMinRing> engine(ring,
                                              core::random_config(ring, rng));
        stab::CentralRandomDaemon daemon{rng.split()};
        auto legit = [&ring](const core::SsrConfig& c) {
          return core::is_legitimate(ring, c);
        };
        const auto r =
            stab::run_until(engine, daemon, legit, 80ULL * n * n + 400);
        if (r.reached) steps.add(static_cast<double>(r.steps));
      }
      table.row()
          .cell(n)
          .cell(K)
          .cell(4 * K)
          .cell(steps.mean(), 1)
          .cell(steps.max(), 0)
          .cell(steps.mean() / (static_cast<double>(n) * n), 3);
    }
  }
  std::cout << table.render()
            << "expectation: convergence cost is governed by n, not K "
               "(K only has to exceed n).\n\n";
}

void ablate_refresh() {
  std::cout << "--- (c) CST refresh interval under 20% loss ---\n";
  TextTable table(
      {"refresh interval", "mean stabilization time", "p95", "converged"});
  const std::size_t n = 6;
  const std::uint32_t K = 7;
  core::SsrMinRing ring(n, K);
  const int trials = bench::full_mode() ? 20 : 8;
  for (double refresh : {2.0, 6.0, 18.0, 54.0}) {
    SampleSet times;
    int converged = 0;
    Rng seeds(555);
    for (int t = 0; t < trials; ++t) {
      msgpass::NetworkParams params;
      params.loss_probability = 0.2;
      params.refresh_interval = refresh;
      params.seed = seeds();
      Rng rng = seeds.split();
      auto sim = msgpass::make_ssrmin_cst(ring, core::random_config(ring, rng),
                                          params);
      sim.randomize_caches([K](Rng& r) {
        core::SsrState s;
        s.x = static_cast<std::uint32_t>(r.below(K));
        s.rts = r.bernoulli(0.5);
        s.tra = r.bernoulli(0.5);
        return s;
      });
      bool ok = false;
      auto stop = [&ring](const msgpass::CstSimulation<core::SsrMinRing>& s) {
        return s.coherent() && core::is_legitimate(ring, s.global_config());
      };
      sim.run_until(stop, 200000.0, &ok);
      if (ok) {
        ++converged;
        times.add(sim.now());
      }
    }
    table.row()
        .cell(refresh, 1)
        .cell(times.empty() ? 0.0 : times.mean(), 1)
        .cell(times.empty() ? 0.0 : times.percentile(95), 1)
        .cell(std::to_string(converged) + "/" + std::to_string(trials));
  }
  std::cout << table.render()
            << "expectation: recovery slows as the repair traffic thins "
               "out, but every trial still converges (Lemma 9).\n";
}

}  // namespace

int main() {
  bench::print_header(
      "E14: design-choice ablations", "paper §3.1 discussion, Theorem 1",
      "the full secondary-token condition is what keeps a secondary token "
      "alive at every instant; K and the refresh interval trade resources "
      "for speed without affecting correctness");
  ablate_secondary_condition();
  ablate_modulus();
  ablate_refresh();
  return 0;
}
