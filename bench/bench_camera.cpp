// E11 — the paper's motivating application (§1.1): a self-organizing
// security-camera ring. Compares the coverage/energy/fairness profile of
// SSRmin against the raw Dijkstra token, the naive two-token scheme, and
// the all-cameras-on upper bound.
#include <iostream>

#include "bench_common.hpp"
#include "inclusion/camera.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssr;
  bench::print_header(
      "E11: camera-network application", "paper §1.1 motivation",
      "SSRmin gives continuous observation (coverage 100%) at near-minimal "
      "energy and even duty sharing; Dijkstra leaves blackout windows; "
      "all-on wastes energy");

  const std::vector<std::size_t> sizes =
      bench::full_mode() ? std::vector<std::size_t>{6, 12, 24}
                         : std::vector<std::size_t>{6, 12};
  const double duration = bench::full_mode() ? 6000.0 : 2000.0;

  TextTable table({"policy", "n", "coverage %", "blackouts",
                   "unmonitored time", "mean active", "energy", "min battery",
                   "duty fairness", "handovers"});

  for (std::size_t n : sizes) {
    for (auto policy :
         {incl::CameraPolicy::kSsrMin, incl::CameraPolicy::kDijkstra,
          incl::CameraPolicy::kDualDijkstra, incl::CameraPolicy::kAllActive}) {
      incl::CameraParams params;
      params.node_count = n;
      params.duration = duration;
      params.net.seed = 21;
      const incl::CameraReport r = incl::run_camera(policy, params);
      table.row()
          .cell(incl::to_string(policy))
          .cell(n)
          .cell(100.0 * r.coverage, 3)
          .cell(r.blackout_intervals)
          .cell(r.unmonitored_time, 1)
          .cell(r.mean_active, 2)
          .cell(r.energy_consumed, 0)
          .cell(r.min_battery, 1)
          .cell(r.duty_fairness, 3)
          .cell(r.handovers);
    }
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "camera");
  std::cout << "paper expectation: ssrmin = 100% coverage, ~1.x active "
               "cameras, high fairness; dijkstra < 100% coverage; all-active "
               "= 100% but ~n active cameras and the worst batteries.\n";
  return 0;
}
