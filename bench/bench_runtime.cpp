// E13 — graceful handover on real threads: one jthread per node, real
// channels, real clocks. Consistent sampler snapshots must never observe
// zero SSRmin token holders; the Dijkstra baseline has genuine extinction
// windows a sampler can catch.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "runtime/factories.hpp"
#include "runtime/udp_ring.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssr;
  using namespace std::chrono_literals;
  bench::print_header(
      "E13: threaded runtime handover", "Theorem 3 on real threads",
      "consistent samples of the SSRmin ring always show 1..2 holders; "
      "the token circulates and hands over gracefully");

  const std::vector<std::size_t> sizes{4, 8};
  const auto window = bench::full_mode() ? 1500ms : 600ms;

  TextTable table({"algorithm", "n", "samples", "consistent", "zero-holder",
                   "min holders", "max holders", "handovers", "rules exec",
                   "msgs sent"});

  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    runtime::RuntimeParams params;
    params.refresh_interval = 500us;
    params.seed = 2024;
    {
      core::SsrMinRing ring(n, K);
      auto tr = runtime::make_ssrmin_threaded(
          ring, core::canonical_legitimate(ring, 0), params);
      tr->start();
      const runtime::SamplerReport r = tr->observe(window, 200us);
      tr->stop();
      table.row()
          .cell("ssrmin")
          .cell(n)
          .cell(r.samples)
          .cell(r.consistent_samples)
          .cell(r.zero_holder_samples)
          .cell(r.min_holders)
          .cell(r.max_holders)
          .cell(r.handovers)
          .cell(r.rule_executions)
          .cell(r.messages_sent);
    }
    {
      dijkstra::KStateRing ring(n, K);
      auto tr = runtime::make_kstate_threaded(ring, dijkstra::KStateConfig(n),
                                              params);
      tr->start();
      const runtime::SamplerReport r = tr->observe(window, 200us);
      tr->stop();
      table.row()
          .cell("dijkstra")
          .cell(n)
          .cell(r.samples)
          .cell(r.consistent_samples)
          .cell(r.zero_holder_samples)
          .cell(r.min_holders)
          .cell(r.max_holders)
          .cell(r.handovers)
          .cell(r.rule_executions)
          .cell(r.messages_sent);
    }
  }
  // The same experiment over real loopback UDP sockets with CRC-framed
  // states, clean and with 20% frame corruption (rejected by checksum,
  // i.e. behaving as loss).
  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    for (double corruption : {0.0, 0.2}) {
      core::SsrMinRing ring(n, K);
      runtime::UdpParams params;
      params.refresh_interval = 1000us;
      params.seed = 99;
      params.corruption_probability = corruption;
      runtime::UdpSsrRing udp(ring, core::canonical_legitimate(ring, 0),
                              params);
      udp.start();
      const runtime::SamplerReport r = udp.observe(window, 300us);
      udp.stop();
      table.row()
          .cell(corruption == 0.0 ? "ssrmin/udp" : "ssrmin/udp+20%corrupt")
          .cell(n)
          .cell(r.samples)
          .cell(r.consistent_samples)
          .cell(r.zero_holder_samples)
          .cell(r.min_holders)
          .cell(r.max_holders)
          .cell(r.handovers)
          .cell(r.rule_executions)
          .cell(r.messages_sent);
    }
  }

  std::cout << table.render() << '\n';
  std::cout << "paper expectation: ssrmin zero-holder samples = 0 with "
               "holders in [1,2] (clean links; corruption behaves as loss, "
               "so rare transients are tolerated there); dijkstra may show "
               "zero-holder samples (its handover is not graceful).\n";
  return 0;
}
