// E2 — Figure 1 / Lemmas 1-2: closure and token accounting over every
// legitimate configuration, plus the inchworm revolution structure
// (3n steps per revolution, tokens visiting every process).
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssr;
  bench::print_header(
      "E2: closure and token circulation", "Figure 1, Lemmas 1-2",
      "every legitimate configuration has exactly one enabled process, one "
      "primary and one secondary token; successors stay legitimate; one "
      "revolution takes 3n steps and visits every process");

  TextTable table({"n", "K", "legit configs (3nK)", "closure ok",
                   "token counts ok", "unique enabled ok",
                   "revolution steps", "cycle closes after 3nK steps"});

  const std::size_t max_n = bench::full_mode() ? 24 : 12;
  for (std::size_t n = 3; n <= max_n; ++n) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const core::SsrMinRing ring(n, K);
    const auto all = core::enumerate_legitimate(ring);

    bool closure_ok = true;
    bool tokens_ok = true;
    bool unique_ok = true;
    for (const auto& config : all) {
      stab::Engine<core::SsrMinRing> engine(ring, config);
      const auto enabled = engine.enabled_indices();
      if (enabled.size() != 1) unique_ok = false;
      if (core::primary_token_count(ring, config) != 1 ||
          core::secondary_token_count(ring, config) != 1)
        tokens_ok = false;
      const std::size_t priv = core::privileged_count(ring, config);
      if (priv < 1 || priv > 2) tokens_ok = false;
      if (!enabled.empty()) {
        engine.step(enabled);
        if (!core::is_legitimate(ring, engine.config())) closure_ok = false;
      }
    }

    // Revolution structure from the canonical start.
    stab::Engine<core::SsrMinRing> engine(ring,
                                          core::canonical_legitimate(ring, 0));
    stab::SynchronousDaemon daemon;
    const auto start = engine.config();
    bool closes = true;
    for (std::size_t t = 0; t < 3 * n * K; ++t) {
      if (!engine.step_with(daemon)) {
        closes = false;
        break;
      }
    }
    closes = closes && engine.config() == start;

    table.row()
        .cell(n)
        .cell(K)
        .cell(all.size())
        .cell(closure_ok)
        .cell(tokens_ok)
        .cell(unique_ok)
        .cell(3 * n)
        .cell(closes);
  }
  std::cout << table.render() << '\n';
  std::cout << "paper expectation: all columns 'yes'; legit configs = 3nK "
               "(Definition 1).\n";
  return 0;
}
