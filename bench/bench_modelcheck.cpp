// E3 — Lemmas 1, 2, 4, 6 / Theorems 1-2, machine-checked: exhaustive
// verification over the full configuration space for small (n, K), with
// the exact worst-case stabilization time under the adversarial
// distributed daemon.
//
// Each space is checked at 1 worker thread and (when the host has more
// than one hardware thread) at full hardware concurrency; the reports are
// bit-identical, so the extra rows only measure the sharded-sweep speedup.
// Besides the usual table/export, the run always writes
// BENCH_modelcheck.json (rows: protocol, n, K, configs, threads, wall_ms)
// so successive PRs can track the checker's throughput trajectory.
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dijkstra/kstate.hpp"
#include "util/table.hpp"
#include "verify/checkers.hpp"

namespace {

std::vector<std::size_t> thread_counts() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw == 1) return {1};
  return {1, hw};
}

template <typename Checker>
void run_row(ssr::TextTable& table, ssr::TextTable& trajectory,
             const std::string& name, std::size_t n, std::uint32_t K,
             const Checker& checker, ssr::verify::CheckOptions options) {
  for (std::size_t threads : thread_counts()) {
    options.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const ssr::verify::CheckReport r = checker.run(options);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    table.row()
        .cell(name)
        .cell(n)
        .cell(K)
        .cell(r.total_configs)
        .cell(r.legitimate_configs)
        .cell(threads)
        .cell(r.deadlock_free)
        .cell(r.closure_holds)
        .cell(r.token_bounds_hold)
        .cell(r.convergence_holds)
        .cell(r.worst_case_steps)
        .cell(r.min_privileged_anywhere)
        .cell(static_cast<std::uint64_t>(ms));
    trajectory.row()
        .cell(name)
        .cell(n)
        .cell(K)
        .cell(r.total_configs)
        .cell(threads)
        .cell(static_cast<std::uint64_t>(ms));
  }
}

}  // namespace

int main() {
  using namespace ssr;
  bench::print_header(
      "E3: exhaustive model checking", "Lemmas 1, 2, 4, 6; Theorems 1-2",
      "over the complete configuration space, SSRmin is deadlock-free, "
      "closed on Lambda, keeps 1..2 privileged processes there, always has "
      ">= 1 privileged process anywhere, and every execution converges");

  TextTable table({"protocol", "n", "K", "configs", "legit", "threads",
                   "no-deadlock", "closure", "tokens[1,2]", "convergence",
                   "worst steps", "min priv anywhere", "ms"});
  TextTable trajectory({"protocol", "n", "K", "configs", "threads",
                        "wall_ms"});

  verify::CheckOptions ssr_options;  // defaults: privileged in [1,2]
  run_row(table, trajectory, "ssrmin", 3, 4, verify::make_ssrmin_checker(3, 4),
          ssr_options);
  run_row(table, trajectory, "ssrmin", 3, 5, verify::make_ssrmin_checker(3, 5),
          ssr_options);
  run_row(table, trajectory, "ssrmin", 3, 6, verify::make_ssrmin_checker(3, 6),
          ssr_options);
  run_row(table, trajectory, "ssrmin", 4, 5, verify::make_ssrmin_checker(4, 5),
          ssr_options);
  // 331k configurations: full-mode-only before the sharded sweep, now a
  // default row.
  run_row(table, trajectory, "ssrmin", 4, 6, verify::make_ssrmin_checker(4, 6),
          ssr_options);
  if (bench::full_mode()) {
    run_row(table, trajectory, "ssrmin", 4, 7,
            verify::make_ssrmin_checker(4, 7), ssr_options);
    // The big one: 24^5 ≈ 8M configurations, every distributed-daemon
    // subset choice.
    run_row(table, trajectory, "ssrmin", 5, 6,
            verify::make_ssrmin_checker(5, 6), ssr_options);
  }

  verify::CheckOptions dij_options;
  dij_options.min_privileged = 1;
  dij_options.max_privileged = 1;
  run_row(table, trajectory, "dijkstra", 3, 4,
          verify::make_kstate_checker(3, 4), dij_options);
  run_row(table, trajectory, "dijkstra", 4, 5,
          verify::make_kstate_checker(4, 5), dij_options);
  run_row(table, trajectory, "dijkstra", 5, 6,
          verify::make_kstate_checker(5, 6), dij_options);
  run_row(table, trajectory, "dijkstra", 6, 7,
          verify::make_kstate_checker(6, 7), dij_options);
  // 8^7 ≈ 2M configurations — previously full-mode-only territory.
  run_row(table, trajectory, "dijkstra", 7, 8,
          verify::make_kstate_checker(7, 8), dij_options);
  if (bench::full_mode()) {
    run_row(table, trajectory, "dijkstra", 8, 9,
            verify::make_kstate_checker(8, 9), dij_options);
  }

  std::cout << table.render() << '\n';
  bench::maybe_export(table, "modelcheck");
  {
    std::ofstream json("BENCH_modelcheck.json");
    json << trajectory.to_json(2) << '\n';
  }
  std::cout << "(wrote BENCH_modelcheck.json)\n";
  std::cout << "paper expectation: every boolean column 'yes'; legit = 3nK "
               "(SSRmin, Def. 1) / nK (Dijkstra); worst steps grow ~ n^2 "
               "(Theorem 2; Dijkstra bound 3n(n-1)/2 per [1]).\n";
  if (!bench::full_mode()) {
    std::cout << "(set SSRING_BENCH_FULL=1 for the larger spaces)\n";
  }
  return 0;
}
