// E3 — Lemmas 1, 2, 4, 6 / Theorems 1-2, machine-checked: exhaustive
// verification over the full configuration space for small (n, K), with
// the exact worst-case stabilization time under the adversarial
// distributed daemon.
//
// Each space is checked at 1 worker thread and (when the host has more
// than one hardware thread) at full hardware concurrency; the reports are
// bit-identical at every thread count AND in every Phase B storage mode,
// so the extra rows only measure speed and memory, never answers.
//
// Memory columns: `peakMiB` is the checker's analytic Phase B high-water
// mark (CheckStats::measured_peak_bytes — per-structure maxima summed, an
// upper bound on what Phase B holds at once). Process peak RSS
// (getrusage ru_maxrss) is printed once at the end: it is process-wide
// and monotone across rows, so per-row deltas are not meaningful, but it
// bounds the whole run from above.
//
// Besides the usual table/export, the run always writes
// BENCH_modelcheck.json (rows: protocol, n, K, configs, threads, mode,
// wall_ms, peak_mib, spill_bytes, rss_mib, backend, lanes) so successive
// PRs can track the checker's throughput and footprint trajectory.
// `backend`/`lanes` name the bit-sliced Phase A engine (u64/avx2/avx512 x
// 64/256/512) — or "scalar"/1 when the odometer sweep ran instead.
// `spill_bytes` is the on-disk move stream (0 for the in-RAM modes) and
// `rss_mib` the process high-water RSS when the row finished — monotone
// across rows, so read it as an upper bound, not a per-row delta.
//
// `--smoke` runs a minimal quad-mode pass (for the sanitizer CI job),
// cross-checks the sliced Phase A against the scalar sweep for report
// identity, forces a kAuto spill under a tight budget, and prints peak
// RSS.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dijkstra/kstate.hpp"
#include "util/table.hpp"
#include "verify/checkers.hpp"

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

double peak_rss_mib() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

std::vector<std::size_t> thread_counts() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw == 1) return {1};
  return {1, hw};
}

template <typename Checker>
ssr::verify::CheckReport run_once(const Checker& checker,
                                  ssr::verify::CheckOptions options,
                                  std::size_t threads,
                                  ssr::verify::PhaseBStorage storage,
                                  double& wall_ms) {
  options.threads = threads;
  options.storage = storage;
  const auto t0 = std::chrono::steady_clock::now();
  ssr::verify::CheckReport r = checker.run(options);
  wall_ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
  return r;
}

std::string phase_a_backend(const ssr::verify::CheckReport& r) {
  return r.stats.phase_a_sliced ? r.stats.phase_a_backend
                                : std::string("scalar");
}

unsigned phase_a_lanes(const ssr::verify::CheckReport& r) {
  return r.stats.phase_a_sliced ? r.stats.phase_a_lanes : 1u;
}

void add_trajectory_row(ssr::TextTable& trajectory, const std::string& name,
                        std::size_t n, std::uint32_t K,
                        const ssr::verify::CheckReport& r, std::size_t threads,
                        double ms) {
  trajectory.row()
      .cell(name)
      .cell(n)
      .cell(K)
      .cell(r.total_configs)
      .cell(threads)
      .cell(ssr::verify::to_string(r.stats.mode))
      .cell(ms, 1)
      .cell(static_cast<double>(r.stats.measured_peak_bytes) / kMiB, 2)
      .cell(r.stats.spill_bytes)
      .cell(peak_rss_mib(), 1)
      .cell(phase_a_backend(r))
      .cell(phase_a_lanes(r));
}

template <typename Checker>
void run_row(ssr::TextTable& table, ssr::TextTable& trajectory,
             const std::string& name, std::size_t n, std::uint32_t K,
             const Checker& checker, ssr::verify::CheckOptions options,
             ssr::verify::PhaseBStorage storage =
                 ssr::verify::PhaseBStorage::kAuto,
             std::vector<std::size_t> threads_list = {}) {
  if (threads_list.empty()) threads_list = thread_counts();
  for (std::size_t threads : threads_list) {
    double ms = 0.0;
    const ssr::verify::CheckReport r =
        run_once(checker, options, threads, storage, ms);
    const double peak_mib =
        static_cast<double>(r.stats.measured_peak_bytes) / kMiB;
    table.row()
        .cell(name)
        .cell(n)
        .cell(K)
        .cell(r.total_configs)
        .cell(r.legitimate_configs)
        .cell(threads)
        .cell(ssr::verify::to_string(r.stats.mode))
        .cell(phase_a_backend(r))
        .cell(r.deadlock_free)
        .cell(r.closure_holds)
        .cell(r.token_bounds_hold)
        .cell(r.convergence_holds)
        .cell(r.worst_case_steps)
        .cell(r.min_privileged_anywhere)
        .cell(peak_mib, 1)
        .cell(ms, 0);
    add_trajectory_row(trajectory, name, n, K, r, threads, ms);
  }
}

/// The headline perf_opt claim: on the same space, the compressed Phase B
/// holds a small fraction of the legacy CSR's bytes at comparable wall
/// time, and the spill tier keeps even less resident by streaming the
/// move records through disk. Runs the space in every storage mode at the
/// given thread counts and prints the peak ratios.
template <typename Checker>
void run_mode_comparison(ssr::TextTable& table, ssr::TextTable& trajectory,
                         const std::string& name, std::size_t n,
                         std::uint32_t K, const Checker& checker,
                         ssr::verify::CheckOptions options,
                         const std::vector<std::size_t>& threads_list) {
  using ssr::verify::PhaseBStorage;
  for (std::size_t threads : threads_list) {
    double legacy_ms = 0.0, compressed_ms = 0.0, csrfree_ms = 0.0,
           spill_ms = 0.0;
    const auto legacy = run_once(checker, options, threads,
                                 PhaseBStorage::kLegacyCsr, legacy_ms);
    const auto compressed = run_once(checker, options, threads,
                                     PhaseBStorage::kCompressed,
                                     compressed_ms);
    const auto csrfree = run_once(checker, options, threads,
                                  PhaseBStorage::kCsrFree, csrfree_ms);
    const auto spill = run_once(checker, options, threads,
                                PhaseBStorage::kSpill, spill_ms);
    for (const auto* pair : {&legacy, &compressed, &csrfree, &spill}) {
      const ssr::verify::CheckReport& r = *pair;
      const double ms = (pair == &legacy)       ? legacy_ms
                        : (pair == &compressed) ? compressed_ms
                        : (pair == &csrfree)    ? csrfree_ms
                                                : spill_ms;
      const double peak_mib =
          static_cast<double>(r.stats.measured_peak_bytes) / kMiB;
      table.row()
          .cell(name)
          .cell(n)
          .cell(K)
          .cell(r.total_configs)
          .cell(r.legitimate_configs)
          .cell(threads)
          .cell(ssr::verify::to_string(r.stats.mode))
          .cell(phase_a_backend(r))
          .cell(r.deadlock_free)
          .cell(r.closure_holds)
          .cell(r.token_bounds_hold)
          .cell(r.convergence_holds)
          .cell(r.worst_case_steps)
          .cell(r.min_privileged_anywhere)
          .cell(peak_mib, 1)
          .cell(ms, 0);
      add_trajectory_row(trajectory, name, n, K, r, threads, ms);
    }
    const double mem_ratio =
        static_cast<double>(legacy.stats.measured_peak_bytes) /
        static_cast<double>(compressed.stats.measured_peak_bytes);
    char line[320];
    std::snprintf(line, sizeof(line),
                  "mode comparison %s(%zu,%u) threads=%zu: peak "
                  "legacy/compressed = %.1fx, wall compressed/legacy = "
                  "%.2fx, csr-free peak = %.1f MiB, spill peak = %.1f MiB "
                  "(+%.1f MiB on disk, read-amp %.2fx)\n",
                  name.c_str(), n, K, threads, mem_ratio,
                  compressed_ms / legacy_ms,
                  static_cast<double>(csrfree.stats.measured_peak_bytes) /
                      kMiB,
                  static_cast<double>(spill.stats.measured_peak_bytes) / kMiB,
                  static_cast<double>(spill.stats.spill_bytes) / kMiB,
                  spill.stats.read_amplification);
    std::cout << line;
  }
}

/// Same space, same answers, two Phase A engines: the sliced sweep must
/// reproduce the scalar odometer's report bit-for-bit while finishing
/// sooner. Prints the wall-time ratio alongside the two rows.
template <typename Checker>
void run_phase_a_comparison(ssr::TextTable& table, ssr::TextTable& trajectory,
                            const std::string& name, std::size_t n,
                            std::uint32_t K, const Checker& checker,
                            ssr::verify::CheckOptions options,
                            std::size_t threads) {
  using ssr::verify::PhaseAMode;
  double scalar_ms = 0.0, sliced_ms = 0.0;
  auto scalar_options = options;
  scalar_options.phase_a = PhaseAMode::kScalar;
  auto sliced_options = options;
  sliced_options.phase_a = PhaseAMode::kSliced;
  const auto scalar = run_once(checker, scalar_options, threads,
                               ssr::verify::PhaseBStorage::kAuto, scalar_ms);
  const auto sliced = run_once(checker, sliced_options, threads,
                               ssr::verify::PhaseBStorage::kAuto, sliced_ms);
  for (const auto* r : {&scalar, &sliced}) {
    const double ms = (r == &scalar) ? scalar_ms : sliced_ms;
    const double peak_mib =
        static_cast<double>(r->stats.measured_peak_bytes) / kMiB;
    table.row()
        .cell(name)
        .cell(n)
        .cell(K)
        .cell(r->total_configs)
        .cell(r->legitimate_configs)
        .cell(threads)
        .cell(ssr::verify::to_string(r->stats.mode))
        .cell(phase_a_backend(*r))
        .cell(r->deadlock_free)
        .cell(r->closure_holds)
        .cell(r->token_bounds_hold)
        .cell(r->convergence_holds)
        .cell(r->worst_case_steps)
        .cell(r->min_privileged_anywhere)
        .cell(peak_mib, 1)
        .cell(ms, 0);
    add_trajectory_row(trajectory, name, n, K, *r, threads, ms);
  }
  const bool identical = scalar.summary() == sliced.summary();
  char line[256];
  std::snprintf(line, sizeof(line),
                "phase A comparison %s(%zu,%u) threads=%zu: wall "
                "scalar/sliced(%s) = %.1fx, reports %s\n",
                name.c_str(), n, K, threads,
                sliced.stats.phase_a_backend.c_str(), scalar_ms / sliced_ms,
                identical ? "identical" : "DIVERGED");
  std::cout << line;
}

int run_smoke() {
  using namespace ssr;
  std::cout << "bench_modelcheck --smoke: quad-mode sanity pass\n";
  verify::CheckOptions ssr_options;
  verify::CheckOptions dij_options;
  dij_options.min_privileged = 1;
  dij_options.max_privileged = 1;
  int failures = 0;
  for (verify::PhaseBStorage storage :
       {verify::PhaseBStorage::kLegacyCsr, verify::PhaseBStorage::kCompressed,
        verify::PhaseBStorage::kCsrFree, verify::PhaseBStorage::kSpill}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      double ms = 0.0;
      const auto ssrmin = run_once(verify::make_ssrmin_checker(3, 4),
                                   ssr_options, threads, storage, ms);
      const auto dijkstra = run_once(verify::make_kstate_checker(3, 4),
                                     dij_options, threads, storage, ms);
      // The same spaces again with the scalar odometer sweep: every field
      // of both reports must come out bit-identical to the sliced runs.
      auto scalar_ssr = ssr_options;
      scalar_ssr.phase_a = verify::PhaseAMode::kScalar;
      auto scalar_dij = dij_options;
      scalar_dij.phase_a = verify::PhaseAMode::kScalar;
      const auto ssrmin_scalar = run_once(verify::make_ssrmin_checker(3, 4),
                                          scalar_ssr, threads, storage, ms);
      const auto dijkstra_scalar = run_once(verify::make_kstate_checker(3, 4),
                                            scalar_dij, threads, storage, ms);
      bool ok = ssrmin.all_ok() && ssrmin.worst_case_steps == 16 &&
                dijkstra.all_ok() &&
                ssrmin.summary() == ssrmin_scalar.summary() &&
                dijkstra.summary() == dijkstra_scalar.summary();
      if (storage == verify::PhaseBStorage::kSpill &&
          (ssrmin.stats.spill_bytes == 0 ||
           ssrmin.stats.mode != verify::PhaseBStorage::kSpill)) {
        ok = false;
      }
      if (!ok) ++failures;
      std::cout << "  storage=" << verify::to_string(storage)
                << " threads=" << threads << " phase_a="
                << (ssrmin.stats.phase_a_sliced ? ssrmin.stats.phase_a_backend
                                                : "scalar")
                << " vs scalar: " << (ok ? "ok" : "FAILED") << '\n';
    }
  }
  // A forced-spill kAuto cell: squeeze the budget between the spill
  // mode's resident projection and the cheapest in-RAM projection and
  // the auto-picker must go out of core — with the same answers.
  {
    const auto checker = verify::make_ssrmin_checker(4, 5);
    const std::uint64_t total = checker.codec().total();
    auto options = ssr_options;
    options.memory_budget_bytes =
        (verify::projected_spill_resident_bytes(total, 4,
                                                checker.codec().radix()) +
         verify::projected_csrfree_bytes(total)) /
        2;
    double ms = 0.0;
    const auto forced = run_once(checker, options, 2,
                                 verify::PhaseBStorage::kAuto, ms);
    double baseline_ms = 0.0;
    const auto baseline = run_once(checker, ssr_options, 2,
                                   verify::PhaseBStorage::kCompressed,
                                   baseline_ms);
    const bool ok = forced.stats.mode == verify::PhaseBStorage::kSpill &&
                    forced.stats.spill_bytes > 0 &&
                    forced.summary() == baseline.summary();
    if (!ok) ++failures;
    std::cout << "  auto-under-tight-budget: mode="
              << verify::to_string(forced.stats.mode)
              << " spill_bytes=" << forced.stats.spill_bytes
              << " vs compressed: " << (ok ? "ok" : "FAILED") << '\n';
  }
  std::cout << "peak-RSS: " << peak_rss_mib() << " MiB\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  bench::print_header(
      "E3: exhaustive model checking", "Lemmas 1, 2, 4, 6; Theorems 1-2",
      "over the complete configuration space, SSRmin is deadlock-free, "
      "closed on Lambda, keeps 1..2 privileged processes there, always has "
      ">= 1 privileged process anywhere, and every execution converges");

  TextTable table({"protocol", "n", "K", "configs", "legit", "threads",
                   "mode", "phaseA", "no-deadlock", "closure", "tokens[1,2]",
                   "convergence", "worst steps", "min priv anywhere",
                   "peakMiB", "ms"});
  TextTable trajectory({"protocol", "n", "K", "configs", "threads", "mode",
                        "wall_ms", "peak_mib", "spill_bytes", "rss_mib",
                        "backend", "lanes"});

  verify::CheckOptions ssr_options;  // defaults: privileged in [1,2]
  run_row(table, trajectory, "ssrmin", 3, 4, verify::make_ssrmin_checker(3, 4),
          ssr_options);
  run_row(table, trajectory, "ssrmin", 3, 5, verify::make_ssrmin_checker(3, 5),
          ssr_options);
  run_row(table, trajectory, "ssrmin", 3, 6, verify::make_ssrmin_checker(3, 6),
          ssr_options);
  run_row(table, trajectory, "ssrmin", 4, 5, verify::make_ssrmin_checker(4, 5),
          ssr_options);
  // 331k configurations: full-mode-only before the sharded sweep, now a
  // default row — run scalar-vs-sliced so the Phase A speedup and the
  // report identity are pinned in the output.
  run_phase_a_comparison(table, trajectory, "ssrmin", 4, 6,
                         verify::make_ssrmin_checker(4, 6), ssr_options, 1);
  // The same 331k-config space forced out of core: Phase B streams its
  // move records through a temp file, so the default run always carries
  // at least one mode=spill row (pinned by tools/check_bench_json.py).
  run_row(table, trajectory, "ssrmin", 4, 6, verify::make_ssrmin_checker(4, 6),
          ssr_options, verify::PhaseBStorage::kSpill, {1});
  if (bench::full_mode()) {
    run_row(table, trajectory, "ssrmin", 4, 7,
            verify::make_ssrmin_checker(4, 7), ssr_options);
    // The big one: 24^5 ≈ 8M configurations, every distributed-daemon
    // subset choice — run in all three storage modes at 1 and 2 workers
    // so the legacy/compressed peak-memory ratio is pinned in the output.
    run_mode_comparison(table, trajectory, "ssrmin", 5, 6,
                        verify::make_ssrmin_checker(5, 6), ssr_options,
                        {1, 2});
  }

  verify::CheckOptions dij_options;
  dij_options.min_privileged = 1;
  dij_options.max_privileged = 1;
  run_row(table, trajectory, "dijkstra", 3, 4,
          verify::make_kstate_checker(3, 4), dij_options);
  run_row(table, trajectory, "dijkstra", 4, 5,
          verify::make_kstate_checker(4, 5), dij_options);
  run_row(table, trajectory, "dijkstra", 5, 6,
          verify::make_kstate_checker(5, 6), dij_options);
  run_row(table, trajectory, "dijkstra", 6, 7,
          verify::make_kstate_checker(6, 7), dij_options);
  // 8^7 ≈ 2M configurations — previously full-mode-only territory; also
  // the scalar-vs-sliced Phase A pin for the Dijkstra kernel.
  run_phase_a_comparison(table, trajectory, "dijkstra", 7, 8,
                         verify::make_kstate_checker(7, 8), dij_options, 1);
  run_row(table, trajectory, "dijkstra", 6, 7,
          verify::make_kstate_checker(6, 7), dij_options,
          verify::PhaseBStorage::kSpill, {1});
  if (bench::full_mode()) {
    run_row(table, trajectory, "dijkstra", 8, 9,
            verify::make_kstate_checker(8, 9), dij_options);
    // The Hoepman K = N boundary at a size the CSR could still hold...
    run_row(table, trajectory, "dijkstra", 8, 8,
            verify::make_kstate_checker(8, 8), dij_options);
    // ...and one it could not: 9^9 ≈ 387M configurations with ~69G
    // daemon-subset edges. The legacy CSR would need ~0.5TiB; the slim
    // backends fit in a few GiB, so this row exists only post-compression.
    run_row(table, trajectory, "dijkstra", 9, 9,
            verify::make_kstate_checker(9, 9), dij_options);
  }

  // The out-of-core headline: ssrmin(6,7) = 28^6 ≈ 482M configurations
  // under a 2.5 GiB budget that no in-RAM mode fits (compressed projects
  // ≈ 6.9 GiB, csr-free ≈ 3.0 GiB), so kAuto must take the spill tier —
  // ≈ 2.8 GiB of move records stream through the temp file while ≈ 2 GiB
  // stay resident. Gated on its own env knob besides full mode because
  // the run takes the better part of an hour single-core.
  if (bench::full_mode() ||
      std::getenv("SSRING_BENCH_SPILL_BIG") != nullptr) {
    verify::CheckOptions spill_options = ssr_options;
    spill_options.memory_budget_bytes = std::uint64_t{5} << 29;  // 2.5 GiB
    run_row(table, trajectory, "ssrmin", 6, 7,
            verify::make_ssrmin_checker(6, 7), spill_options,
            verify::PhaseBStorage::kAuto, {1});
  }

  std::cout << table.render() << '\n';
  bench::maybe_export(table, "modelcheck");
  {
    std::ofstream json("BENCH_modelcheck.json");
    json << trajectory.to_json(2) << '\n';
  }
  std::cout << "(wrote BENCH_modelcheck.json)\n";
  std::cout << "peak-RSS: " << peak_rss_mib() << " MiB (process high-water "
               "mark across every row above)\n";
  std::cout << "paper expectation: every boolean column 'yes'; legit = 3nK "
               "(SSRmin, Def. 1) / nK (Dijkstra); worst steps grow ~ n^2 "
               "(Theorem 2; Dijkstra bound 3n(n-1)/2 per [1]).\n";
  if (!bench::full_mode()) {
    std::cout << "(set SSRING_BENCH_FULL=1 for the larger spaces, "
                 "SSRING_BENCH_SPILL_BIG=1 for the out-of-core "
                 "ssrmin(6,7) row)\n";
  }
  std::cout << "scope note: dijkstra(10,10) = 10^10 configurations is out "
               "of reach for this single-host checker in any mode — the "
               "spill tier's resident offset index alone projects ~42 GiB "
               "and the stream ~77 GiB; it needs sharding across hosts.\n";
  return 0;
}
