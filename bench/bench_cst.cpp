// E28 — sharded conservative PDES scale: the CST engine partitions the
// ring into contiguous worker segments synchronized once per lookahead
// window (delay_min), so event throughput is bounded by heap work, not
// by an O(n) holder scan per event. The table sweeps the ring size
// through 10^4 / 10^5 / 10^6 nodes at one and several workers and
// reports events/sec and wall time; every statistic column must be
// identical across the worker counts of a given size (the engine's
// byte-identity contract, pinned by tests/test_cst_parallel.cpp).
//
//   --smoke        tiny run for CI gating (exit 1 if the 1-vs-2 worker
//                  statistics diverge)
//   --workers W    extra worker count to bench next to the serial row
//                  (default 4; also SSRING_BENCH_THREADS)
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

msgpass::NetworkParams net(std::uint64_t seed, std::size_t workers) {
  msgpass::NetworkParams p;
  p.delay_min = 0.5;
  p.delay_max = 1.0;
  p.loss_probability = 0.0;
  p.refresh_interval = 8.0;
  p.service_min = 0.4;
  p.service_max = 0.9;
  p.seed = seed;
  p.workers = workers;
  return p;
}

struct RunResult {
  msgpass::CoverageStats stats;
  double wall_ms = 0.0;
  std::size_t workers = 0;
};

RunResult run_ssrmin(std::size_t n, double duration, std::size_t workers) {
  const auto K = static_cast<std::uint32_t>(n + 1);
  core::SsrMinRing ring(n, K);
  auto sim = msgpass::make_ssrmin_cst(ring, core::canonical_legitimate(ring, 0),
                                      net(11, workers));
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.stats = sim.run(duration);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.workers = sim.workers();
  return r;
}

void add_row(TextTable& table, std::size_t n, double duration,
             const RunResult& r) {
  const double secs = r.wall_ms / 1000.0;
  const double eps =
      secs > 0.0 ? static_cast<double>(r.stats.events) / secs : 0.0;
  table.row()
      .cell(n)
      .cell(r.workers)
      .cell(duration, 0)
      .cell(r.stats.events)
      .cell(eps, 0)
      .cell(r.wall_ms, 1)
      .cell(100.0 * r.stats.coverage(), 2)
      .cell(r.stats.min_holders)
      .cell(r.stats.max_holders)
      .cell(r.stats.handovers);
}

bool same_stats(const msgpass::CoverageStats& a,
                const msgpass::CoverageStats& b) {
  return a.observed_time == b.observed_time &&
         a.zero_token_time == b.zero_token_time &&
         a.zero_intervals == b.zero_intervals &&
         a.min_holders == b.min_holders && a.max_holders == b.max_holders &&
         a.events == b.events && a.deliveries == b.deliveries &&
         a.transmissions == b.transmissions && a.losses == b.losses &&
         a.rule_executions == b.rule_executions &&
         a.handovers == b.handovers;
}

int smoke() {
  const std::size_t n = 4096;
  const double duration = 30.0;
  const RunResult serial = run_ssrmin(n, duration, 1);
  const RunResult sharded = run_ssrmin(n, duration, 2);
  std::cout << "bench_cst smoke: n=" << n << " events=" << serial.stats.events
            << " coverage=" << 100.0 * serial.stats.coverage()
            << "% holders=[" << serial.stats.min_holders << ","
            << serial.stats.max_holders << "]\n";
  if (serial.stats.events == 0) {
    std::cerr << "smoke FAIL: no events processed\n";
    return 1;
  }
  if (!same_stats(serial.stats, sharded.stats)) {
    std::cerr << "smoke FAIL: statistics diverge between 1 and 2 workers\n";
    return 1;
  }
  if (serial.stats.min_holders < 1 || serial.stats.max_holders > 2) {
    std::cerr << "smoke FAIL: holder count left [1,2] from a legitimate "
                 "start\n";
    return 1;
  }
  std::cout << "smoke OK: 1-vs-2 worker statistics identical\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return smoke();
  }
  std::size_t extra_workers = bench::thread_count(argc, argv);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0) {
      extra_workers = static_cast<std::size_t>(std::atol(argv[i + 1]));
    }
  }
  if (extra_workers == 0) extra_workers = 4;

  bench::print_header(
      "E28: sharded CST engine at scale", "Section 5 (CST transform)",
      "the conservative PDES engine sustains million-node CST rings; "
      "statistics are byte-identical at every worker count");

  // Durations shrink with n so every row processes a few million events
  // (the per-node event rate is fixed by refresh_interval).
  struct ScalePoint {
    std::size_t n;
    double duration;
  };
  const std::vector<ScalePoint> points =
      bench::full_mode()
          ? std::vector<ScalePoint>{{10'000, 400.0},
                                    {100'000, 40.0},
                                    {1'000'000, 8.0}}
          : std::vector<ScalePoint>{{10'000, 40.0}, {100'000, 8.0}};

  TextTable table({"n", "workers", "duration", "events", "events_per_sec",
                   "wall ms", "coverage %", "min holders", "max holders",
                   "handovers"});
  for (const ScalePoint& p : points) {
    const RunResult serial = run_ssrmin(p.n, p.duration, 1);
    add_row(table, p.n, p.duration, serial);
    if (extra_workers > 1) {
      const RunResult sharded = run_ssrmin(p.n, p.duration, extra_workers);
      add_row(table, p.n, p.duration, sharded);
      if (!same_stats(serial.stats, sharded.stats)) {
        std::cerr << "ERROR: n=" << p.n << " statistics diverge between 1 and "
                  << sharded.workers << " workers\n";
        return 1;
      }
    }
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "cst");
  std::cout << "expectation: every statistic column is identical across the "
               "worker counts of a size (rows differ only in wall ms / "
               "events_per_sec); coverage stays 100% with holders in [1,2] "
               "from the legitimate start.\n";
  return 0;
}
