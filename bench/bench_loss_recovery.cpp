// E10 — Lemma 9 / Theorem 4: starting from arbitrary node states AND
// arbitrary cache contents, with uniform random message loss, the CST
// execution of SSRmin reaches a legitimate configuration with coherent
// caches; afterwards the holder count stays in [1, 2]. The table sweeps
// the loss rate and reports stabilization times and post-stabilization
// coverage.
//
//   --workers W    shard the CST engine over W workers (0 = hardware);
//                  statistics are byte-identical at every worker count
#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

std::size_t g_workers = 1;

msgpass::NetworkParams net(std::uint64_t seed, double loss) {
  msgpass::NetworkParams p;
  p.delay_min = 0.5;
  p.delay_max = 1.5;
  p.loss_probability = loss;
  p.refresh_interval = 6.0;
  p.service_min = 0.3;
  p.service_max = 0.8;
  p.seed = seed;
  p.workers = g_workers;
  return p;
}

core::SsrState random_state(Rng& rng, std::uint32_t K) {
  core::SsrState s;
  s.x = static_cast<std::uint32_t>(rng.below(K));
  s.rts = rng.bernoulli(0.5);
  s.tra = rng.bernoulli(0.5);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0) {
      g_workers = static_cast<std::size_t>(std::atol(argv[i + 1]));
    }
  }
  bench::print_header(
      "E10: recovery under message loss", "Lemma 9, Theorem 4",
      "from arbitrary states and caches, under uniform random loss, SSRmin "
      "stabilizes; afterwards coverage is 100% with 1..2 holders");

  // The n=40 row rides on the sharded engine: recovery-from-arbitrary
  // state at sizes the seed's sequential simulator made impractical.
  const std::vector<std::size_t> sizes =
      bench::full_mode() ? std::vector<std::size_t>{5, 10, 20, 40}
                         : std::vector<std::size_t>{5, 10};
  const std::vector<double> losses{0.0, 0.05, 0.1, 0.2, 0.4};
  const int trials = bench::full_mode() ? 20 : 8;

  TextTable table({"n", "loss", "trials converged", "mean stab. time",
                   "p95 stab. time", "post coverage %", "post min holders",
                   "post max holders"});

  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const core::SsrMinRing ring(n, K);
    for (double loss : losses) {
      SampleSet stab_time;
      int converged = 0;
      double post_cov = 0.0;
      std::size_t post_min = SIZE_MAX;
      std::size_t post_max = 0;
      Rng seed_rng(5000 + n * 13 + static_cast<std::uint64_t>(loss * 100));
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng = seed_rng.split();
        auto sim = msgpass::make_ssrmin_cst(ring, core::random_config(ring, rng),
                                            net(seed_rng(), loss));
        sim.randomize_caches([K](Rng& r) { return random_state(r, K); });
        bool stabilized = false;
        auto stop = [&ring](const msgpass::CstSimulation<core::SsrMinRing>& s) {
          return s.coherent() && core::is_legitimate(ring, s.global_config());
        };
        sim.run_until(stop, 100000.0, &stabilized);
        if (!stabilized) continue;
        ++converged;
        stab_time.add(sim.now());
        const msgpass::CoverageStats after = sim.run(2000.0);
        post_cov += after.coverage();
        post_min = std::min(post_min, after.min_holders);
        post_max = std::max(post_max, after.max_holders);
      }
      table.row()
          .cell(n)
          .cell(loss, 2)
          .cell(std::to_string(converged) + "/" + std::to_string(trials))
          .cell(stab_time.empty() ? 0.0 : stab_time.mean(), 1)
          .cell(stab_time.empty() ? 0.0 : stab_time.percentile(95), 1)
          .cell(converged ? 100.0 * post_cov / converged : 0.0, 3)
          .cell(post_min == SIZE_MAX ? 0 : post_min)
          .cell(post_max);
    }
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "loss_recovery");
  std::cout << "paper expectation: every trial converges (Lemma 9); "
               "stabilization time grows with the loss rate; post-"
               "stabilization coverage is 100% with holders in [1,2] "
               "(Theorem 4).\n";
  return 0;
}
