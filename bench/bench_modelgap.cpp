// E7 / E8 / E9 — Figures 11-13 and Theorem 3: the model gap in the
// message-passing model. Under the CST transform with real link delays:
//
//   Figure 11: Dijkstra's token ring loses its token during every
//              handover (zero-holder windows);
//   Figure 12: two independent Dijkstra instances still hit instants with
//              zero holders when both tokens are in flight;
//   Figure 13: SSRmin keeps 1..2 holders at every instant — graceful
//              handover / model gap tolerance.
//
//   --smoke        one quick cell per algorithm for CI gating (exit 1 if
//                  ssrmin leaves [1,2] holders or dijkstra shows no gap)
//   --workers W    shard the CST engine over W workers (0 = hardware);
//                  the emitted statistics are byte-identical at every
//                  worker count, only wall time changes
#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "msgpass/factories.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

std::size_t g_workers = 1;

msgpass::NetworkParams net(std::uint64_t seed, double delay) {
  msgpass::NetworkParams p;
  p.delay_min = 0.5 * delay;
  p.delay_max = delay;
  p.loss_probability = 0.0;
  p.refresh_interval = 8.0 * delay;
  p.service_min = 0.4;
  p.service_max = 0.9;
  p.seed = seed;
  p.workers = g_workers;
  return p;
}

void add_row(TextTable& table, const std::string& algo, std::size_t n,
             double delay, const msgpass::CoverageStats& s) {
  const double mean_gap =
      s.zero_intervals > 0
          ? s.zero_token_time / static_cast<double>(s.zero_intervals)
          : 0.0;
  table.row()
      .cell(algo)
      .cell(n)
      .cell(delay, 1)
      .cell(100.0 * s.coverage(), 2)
      .cell(s.zero_intervals)
      .cell(mean_gap, 2)
      .cell(s.min_holders)
      .cell(s.max_holders)
      .cell(s.handovers);
}

int smoke() {
  const std::size_t n = 8;
  const auto K = static_cast<std::uint32_t>(n + 1);
  const double duration = 2000.0;
  msgpass::CoverageStats dij, ssr_s;
  {
    dijkstra::KStateRing ring(n, K);
    auto sim =
        msgpass::make_kstate_cst(ring, dijkstra::KStateConfig(n), net(7, 2.0));
    dij = sim.run(duration);
  }
  {
    core::SsrMinRing ring(n, K);
    auto sim = msgpass::make_ssrmin_cst(
        ring, core::canonical_legitimate(ring, 0), net(7, 2.0));
    ssr_s = sim.run(duration);
  }
  std::cout << "bench_modelgap smoke: dijkstra coverage="
            << 100.0 * dij.coverage() << "% ssrmin coverage="
            << 100.0 * ssr_s.coverage() << "% holders=["
            << ssr_s.min_holders << "," << ssr_s.max_holders << "]\n";
  if (ssr_s.min_holders < 1 || ssr_s.max_holders > 2 ||
      ssr_s.zero_intervals != 0) {
    std::cerr << "smoke FAIL: ssrmin left the 1..2 holder band\n";
    return 1;
  }
  if (dij.zero_intervals == 0) {
    std::cerr << "smoke FAIL: dijkstra shows no zero-holder window\n";
    return 1;
  }
  std::cout << "smoke OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return smoke();
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0) {
      g_workers = static_cast<std::size_t>(std::atol(argv[i + 1]));
    }
  }
  bench::print_header(
      "E7/E8/E9: token availability in the message-passing model",
      "Figures 11, 12, 13; Theorem 3",
      "SSRmin sustains 100% coverage with 1..2 holders; Dijkstra and "
      "2x Dijkstra leave zero-token windows that grow with link delay");

  const std::vector<std::size_t> sizes =
      bench::full_mode() ? std::vector<std::size_t>{5, 10, 20, 40}
                         : std::vector<std::size_t>{5, 10, 20};
  const std::vector<double> delays = bench::full_mode()
                                         ? std::vector<double>{1.0, 2.0, 4.0, 8.0}
                                         : std::vector<double>{1.0, 4.0};
  const double duration = bench::full_mode() ? 20000.0 : 6000.0;

  TextTable table({"algorithm", "n", "delay", "coverage %", "zero intervals",
                   "mean gap", "min holders", "max holders", "handovers"});

  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    for (double delay : delays) {
      {
        dijkstra::KStateRing ring(n, K);
        auto sim = msgpass::make_kstate_cst(ring, dijkstra::KStateConfig(n),
                                            net(7, delay));
        add_row(table, "dijkstra (Fig.11)", n, delay, sim.run(duration));
      }
      {
        dijkstra::DualKStateRing ring(n, K);
        dijkstra::DualConfig init(n);
        for (std::size_t i = 0; i < n; ++i) init[i].b = (i < n / 2) ? 1 : 0;
        auto sim = msgpass::make_dual_cst(ring, init, net(7, delay));
        add_row(table, "2x dijkstra (Fig.12)", n, delay, sim.run(duration));
      }
      {
        core::SsrMinRing ring(n, K);
        auto sim = msgpass::make_ssrmin_cst(
            ring, core::canonical_legitimate(ring, 0), net(7, delay));
        add_row(table, "ssrmin (Fig.13)", n, delay, sim.run(duration));
      }
    }
  }
  if (bench::full_mode()) {
    // Large-n rows (sharded engine): the model gap persists at ring sizes
    // the node-synchronous figures never reached, and SSRmin's [1,2]
    // holder band is size-independent.
    for (std::size_t n : {std::size_t{200}, std::size_t{1000}}) {
      const auto K = static_cast<std::uint32_t>(n + 1);
      const double delay = 1.0;
      const double duration = 4000.0;
      {
        dijkstra::KStateRing ring(n, K);
        auto sim = msgpass::make_kstate_cst(ring, dijkstra::KStateConfig(n),
                                            net(7, delay));
        add_row(table, "dijkstra (Fig.11)", n, delay, sim.run(duration));
      }
      {
        core::SsrMinRing ring(n, K);
        auto sim = msgpass::make_ssrmin_cst(
            ring, core::canonical_legitimate(ring, 0), net(7, delay));
        add_row(table, "ssrmin (Fig.13)", n, delay, sim.run(duration));
      }
    }
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "modelgap");
  std::cout
      << "paper expectation: ssrmin rows read coverage 100%, zero intervals "
         "0, holders in [1,2]; dijkstra rows show coverage < 100% with gaps "
         "widening as the delay grows; the dual ring improves coverage but "
         "cannot reach 100%.\n";
  return 0;
}
