// E5 — Lemma 5: the longest execution of SSRmin containing no Rule 2/4
// move is at most 3n steps. An adversarial daemon starves Rules 2/4 as
// long as anything else is enabled; we record the longest rule-2/4-free
// stretch it ever achieves and compare against the 3n bound.
//
// Trials fan out over sim::TrialSweep (--threads / SSRING_BENCH_THREADS)
// with per-trial (seed, index) RNG streams; the per-trial maxima and move
// counters merge with max/sum, so the tables are bit-identical at any
// worker count. By default each sweep unit is a 64-lane bit-sliced
// sim::BatchEngine block whose rule-avoiding lanes replay the scalar
// daemon draw-for-draw (--batched off forces the scalar engine; same
// numbers either way). The scalar loop drives the engine through its
// cached enabled view with a reused selection buffer — no per-step
// rescans, no per-step allocation.
#include <algorithm>
#include <array>
#include <bit>
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/ssrmin.hpp"
#include "core/ssrmin_sliced.hpp"
#include "sim/batch_engine.hpp"
#include "sim/sweep.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

struct StretchResult {
  std::uint64_t longest_gap = 0;
  std::uint64_t forced_steps = 0;
};

struct MixResult {
  std::uint64_t moves135 = 0;
  std::uint64_t moves24 = 0;
};

constexpr int kStepsPerTrial = 3000;

bool is_rule24(int rule) {
  return rule == core::SsrMinRing::kRuleSendPrimary ||
         rule == core::SsrMinRing::kRuleFixGuardTrue;
}

sim::LaneDaemonSpec avoid24_spec() {
  return sim::rule_avoiding_spec({core::SsrMinRing::kRuleSendPrimary,
                                  core::SsrMinRing::kRuleFixGuardTrue});
}

// Drives one 64-lane block for kStepsPerTrial steps per trial, handing each
// stepped lane's "did this step execute Rule 2/4" bit to the metric fold.
// Fold: (lane slot, moved24) -> void; Finish: (lane, slot) -> result.
template <typename Slot, typename Fold, typename Finish, typename Result>
std::vector<Result> run_lemma5_block(const core::SsrMinRing& ring,
                                     std::uint64_t seed, sim::BlockRange block,
                                     Fold&& fold, Finish&& finish,
                                     std::vector<Result> out) {
  out.resize(block.count);
  sim::BatchEngine<core::SlicedSsrMin> engine{core::SlicedSsrMin(ring),
                                              avoid24_spec()};
  struct LaneSlot {
    std::uint64_t trial = 0;
    int t = 0;
    Slot metrics{};
  };
  std::array<LaneSlot, 64> slots{};
  std::uint64_t next = 0;
  const auto load_next = [&](unsigned lane) {
    const std::uint64_t trial = block.first + next++;
    Rng rng = sim::trial_rng(seed, trial);
    auto config = core::random_config(ring, rng);
    engine.load_lane(lane, config, rng.split());
    slots[lane] = LaneSlot{trial, 0, Slot{}};
  };
  for (unsigned lane = 0; lane < 64 && next < block.count; ++lane) {
    load_next(lane);
  }
  while (engine.active() != 0) {
    engine.refresh();
    const std::uint64_t runnable = engine.any_enabled();
    std::uint64_t step_mask = 0;
    bool refilled = false;
    for (std::uint64_t m = engine.active(); m != 0; m &= m - 1) {
      const auto lane = static_cast<unsigned>(std::countr_zero(m));
      LaneSlot& slot = slots[lane];
      // The deadlock break mirrors the scalar loop; it never fires
      // (Lemma 4), but keeping it preserves trace equivalence by
      // construction.
      if (slot.t == kStepsPerTrial || ((runnable >> lane) & 1u) == 0) {
        out[slot.trial - block.first] = finish(engine, lane, slot.metrics);
        engine.retire_lane(lane);
        if (next < block.count) {
          load_next(lane);
          refilled = true;
        }
        continue;
      }
      step_mask |= 1ULL << lane;
    }
    if (refilled) continue;  // fresh lanes need planes before stepping
    if (step_mask == 0) continue;
    engine.step(step_mask);
    const std::uint64_t moved24 = engine.last_moved_mask(
        {core::SsrMinRing::kRuleSendPrimary,
         core::SsrMinRing::kRuleFixGuardTrue});
    for (std::uint64_t m = step_mask; m != 0; m &= m - 1) {
      const auto lane = static_cast<unsigned>(std::countr_zero(m));
      LaneSlot& slot = slots[lane];
      ++slot.t;
      fold(slot.metrics, ((moved24 >> lane) & 1u) != 0);
    }
  }
  return out;
}

struct StretchTrack {
  std::uint64_t gap = 0;
  std::uint64_t longest = 0;
};

std::vector<StretchResult> stretch_block(const core::SsrMinRing& ring,
                                         std::uint64_t seed,
                                         sim::BlockRange block) {
  return run_lemma5_block<StretchTrack>(
      ring, seed, block,
      [](StretchTrack& track, bool moved24) {
        if (moved24) {
          track.gap = 0;
        } else {
          ++track.gap;
          track.longest = std::max(track.longest, track.gap);
        }
      },
      [](const sim::BatchEngine<core::SlicedSsrMin>& engine, unsigned lane,
         const StretchTrack& track) {
        return StretchResult{track.longest, engine.forced_steps(lane)};
      },
      std::vector<StretchResult>{});
}

std::vector<MixResult> mix_block(const core::SsrMinRing& ring,
                                 std::uint64_t seed, sim::BlockRange block) {
  return run_lemma5_block<MixResult>(
      ring, seed, block,
      [](MixResult& mix, bool moved24) {
        // The rule-avoiding daemon moves exactly one process per step.
        if (moved24) {
          ++mix.moves24;
        } else {
          ++mix.moves135;
        }
      },
      [](const sim::BatchEngine<core::SlicedSsrMin>&, unsigned,
         const MixResult& mix) { return mix; },
      std::vector<MixResult>{});
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E5: Rule-2/4-free execution length", "Lemma 5",
      "no schedule can avoid Rules 2 and 4 for more than 3n consecutive "
      "steps");

  const std::vector<std::size_t> sizes =
      bench::full_mode() ? std::vector<std::size_t>{3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
                         : std::vector<std::size_t>{3, 4, 6, 8, 12, 16, 24, 32};
  const int trials = bench::full_mode() ? 40 : 15;

  const bool batched = bench::batched_mode(argc, argv);
  sim::TrialSweep sweep({.threads = bench::thread_count(argc, argv)});
  std::cout << "(sweep workers: " << sweep.threads() << ", engine: "
            << (batched ? "batched" : "scalar") << ")\n\n";

  TextTable table({"n", "trials", "longest 2/4-free stretch", "bound 3n",
                   "within bound", "forced 2/4 moves"});

  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const core::SsrMinRing ring(n, K);
    std::vector<StretchResult> results;
    if (batched) {
      const auto blocks = sim::plan_blocks(static_cast<std::uint64_t>(trials),
                                           sweep.threads());
      const auto per_block = sweep.map(blocks.size(), [&](std::uint64_t b) {
        return stretch_block(ring, 4242 + n, blocks[b]);
      });
      for (const auto& block : per_block) {
        results.insert(results.end(), block.begin(), block.end());
      }
    } else {
      results = sweep.run_trials(
          4242 + n, static_cast<std::uint64_t>(trials),
          [&](std::uint64_t, Rng& rng) {
            stab::Engine<core::SsrMinRing> engine(
                ring, core::random_config(ring, rng));
            stab::RuleAvoidingDaemon daemon{
                rng.split(),
                {core::SsrMinRing::kRuleSendPrimary,
                 core::SsrMinRing::kRuleFixGuardTrue}};
            StretchResult out;
            std::uint64_t gap = 0;
            std::vector<std::size_t> selected;
            for (int t = 0; t < kStepsPerTrial; ++t) {
              if (engine.enabled_count() == 0) break;  // never (Lemma 4)
              daemon.select_into(engine.enabled_view(), selected);
              const auto& executed = engine.step(selected);
              const bool moved24 =
                  std::any_of(executed.begin(), executed.end(), is_rule24);
              if (moved24) {
                gap = 0;
              } else {
                ++gap;
                out.longest_gap = std::max(out.longest_gap, gap);
              }
            }
            out.forced_steps = daemon.forced_steps();
            return out;
          });
    }
    std::uint64_t longest = 0;
    std::uint64_t forced_total = 0;
    for (const StretchResult& r : results) {
      longest = std::max(longest, r.longest_gap);
      forced_total += r.forced_steps;
    }
    table.row()
        .cell(n)
        .cell(trials)
        .cell(longest)
        .cell(3 * n)
        .cell(longest <= 3 * n)
        .cell(forced_total);
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "lemma5");
  std::cout << "paper expectation: the longest stretch never exceeds 3n and "
               "approaches it for adversarial schedules; the daemon is "
               "forced into Rule 2/4 moves (the progress guarantee behind "
               "Lemma 6).\n\n";

  // Lemma 8's domination accounting, probed empirically: the proof bounds
  // the number of Rule-1/3/5 events by L = 9 per Rule-2/4 event (plus the
  // 3n prefix), via the bipartite domination graph of Figures 5-10. The
  // worst ratio an adversary achieves in practice sits far below L.
  std::cout << "--- Lemma 8 rule-mix accounting (constant L = 9) ---\n";
  TextTable mix({"n", "moves rule 1/3/5", "moves rule 2/4",
                 "ratio 135/24", "paper bound L"});
  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const core::SsrMinRing ring(n, K);
    std::vector<MixResult> results;
    if (batched) {
      const auto blocks = sim::plan_blocks(static_cast<std::uint64_t>(trials),
                                           sweep.threads());
      const auto per_block = sweep.map(blocks.size(), [&](std::uint64_t b) {
        return mix_block(ring, 9100 + n, blocks[b]);
      });
      for (const auto& block : per_block) {
        results.insert(results.end(), block.begin(), block.end());
      }
    } else {
      results = sweep.run_trials(
          9100 + n, static_cast<std::uint64_t>(trials),
          [&](std::uint64_t, Rng& rng) {
            stab::Engine<core::SsrMinRing> engine(
                ring, core::random_config(ring, rng));
            stab::RuleAvoidingDaemon daemon{
                rng.split(),
                {core::SsrMinRing::kRuleSendPrimary,
                 core::SsrMinRing::kRuleFixGuardTrue}};
            MixResult out;
            std::vector<std::size_t> selected;
            for (int t = 0; t < kStepsPerTrial; ++t) {
              if (engine.enabled_count() == 0) break;
              daemon.select_into(engine.enabled_view(), selected);
              for (int r : engine.step(selected)) {
                if (is_rule24(r)) {
                  ++out.moves24;
                } else {
                  ++out.moves135;
                }
              }
            }
            return out;
          });
    }
    std::uint64_t moves135 = 0;
    std::uint64_t moves24 = 0;
    for (const MixResult& r : results) {
      moves135 += r.moves135;
      moves24 += r.moves24;
    }
    mix.row()
        .cell(n)
        .cell(moves135)
        .cell(moves24)
        .cell(static_cast<double>(moves135) /
                  static_cast<double>(std::max<std::uint64_t>(1, moves24)),
              2)
        .cell(core::lemma8_domination_size());
  }
  std::cout << mix.render() << '\n';
  bench::maybe_export(mix, "lemma8_rule_mix");
  std::cout << "reading: even a daemon that maximally starves Rules 2/4 "
               "cannot push the 1/3/5-to-2/4 move ratio anywhere near the "
               "proof's L = 9 — the domination accounting is loose but "
               "sound.\n";
  return 0;
}
