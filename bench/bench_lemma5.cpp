// E5 — Lemma 5: the longest execution of SSRmin containing no Rule 2/4
// move is at most 3n steps. An adversarial daemon starves Rules 2/4 as
// long as anything else is enabled; we record the longest rule-2/4-free
// stretch it ever achieves and compare against the 3n bound.
//
// Trials fan out over sim::TrialSweep (--threads / SSRING_BENCH_THREADS)
// with per-trial (seed, index) RNG streams; the per-trial maxima and move
// counters merge with max/sum, so the tables are bit-identical at any
// worker count. The inner loop drives the engine through its cached
// enabled view (enabled_count/enabled_view) — no per-step rescans, no
// per-step copies.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/ssrmin.hpp"
#include "sim/sweep.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

struct StretchResult {
  std::uint64_t longest_gap = 0;
  std::uint64_t forced_steps = 0;
};

struct MixResult {
  std::uint64_t moves135 = 0;
  std::uint64_t moves24 = 0;
};

constexpr int kStepsPerTrial = 3000;

bool is_rule24(int rule) {
  return rule == core::SsrMinRing::kRuleSendPrimary ||
         rule == core::SsrMinRing::kRuleFixGuardTrue;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E5: Rule-2/4-free execution length", "Lemma 5",
      "no schedule can avoid Rules 2 and 4 for more than 3n consecutive "
      "steps");

  const std::vector<std::size_t> sizes =
      bench::full_mode() ? std::vector<std::size_t>{3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
                         : std::vector<std::size_t>{3, 4, 6, 8, 12, 16, 24, 32};
  const int trials = bench::full_mode() ? 40 : 15;

  sim::TrialSweep sweep({.threads = bench::thread_count(argc, argv)});
  std::cout << "(sweep workers: " << sweep.threads() << ")\n\n";

  TextTable table({"n", "trials", "longest 2/4-free stretch", "bound 3n",
                   "within bound", "forced 2/4 moves"});

  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const core::SsrMinRing ring(n, K);
    const auto results = sweep.run_trials(
        4242 + n, static_cast<std::uint64_t>(trials),
        [&](std::uint64_t, Rng& rng) {
          stab::Engine<core::SsrMinRing> engine(
              ring, core::random_config(ring, rng));
          stab::RuleAvoidingDaemon daemon{
              rng.split(),
              {core::SsrMinRing::kRuleSendPrimary,
               core::SsrMinRing::kRuleFixGuardTrue}};
          StretchResult out;
          std::uint64_t gap = 0;
          for (int t = 0; t < kStepsPerTrial; ++t) {
            if (engine.enabled_count() == 0) break;  // never (Lemma 4)
            const auto selected = daemon.select(engine.enabled_view());
            const auto& executed = engine.step(selected);
            const bool moved24 =
                std::any_of(executed.begin(), executed.end(), is_rule24);
            if (moved24) {
              gap = 0;
            } else {
              ++gap;
              out.longest_gap = std::max(out.longest_gap, gap);
            }
          }
          out.forced_steps = daemon.forced_steps();
          return out;
        });
    std::uint64_t longest = 0;
    std::uint64_t forced_total = 0;
    for (const StretchResult& r : results) {
      longest = std::max(longest, r.longest_gap);
      forced_total += r.forced_steps;
    }
    table.row()
        .cell(n)
        .cell(trials)
        .cell(longest)
        .cell(3 * n)
        .cell(longest <= 3 * n)
        .cell(forced_total);
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "lemma5");
  std::cout << "paper expectation: the longest stretch never exceeds 3n and "
               "approaches it for adversarial schedules; the daemon is "
               "forced into Rule 2/4 moves (the progress guarantee behind "
               "Lemma 6).\n\n";

  // Lemma 8's domination accounting, probed empirically: the proof bounds
  // the number of Rule-1/3/5 events by L = 9 per Rule-2/4 event (plus the
  // 3n prefix), via the bipartite domination graph of Figures 5-10. The
  // worst ratio an adversary achieves in practice sits far below L.
  std::cout << "--- Lemma 8 rule-mix accounting (constant L = 9) ---\n";
  TextTable mix({"n", "moves rule 1/3/5", "moves rule 2/4",
                 "ratio 135/24", "paper bound L"});
  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const core::SsrMinRing ring(n, K);
    const auto results = sweep.run_trials(
        9100 + n, static_cast<std::uint64_t>(trials),
        [&](std::uint64_t, Rng& rng) {
          stab::Engine<core::SsrMinRing> engine(
              ring, core::random_config(ring, rng));
          stab::RuleAvoidingDaemon daemon{
              rng.split(),
              {core::SsrMinRing::kRuleSendPrimary,
               core::SsrMinRing::kRuleFixGuardTrue}};
          MixResult out;
          for (int t = 0; t < kStepsPerTrial; ++t) {
            if (engine.enabled_count() == 0) break;
            const auto selected = daemon.select(engine.enabled_view());
            for (int r : engine.step(selected)) {
              if (is_rule24(r)) {
                ++out.moves24;
              } else {
                ++out.moves135;
              }
            }
          }
          return out;
        });
    std::uint64_t moves135 = 0;
    std::uint64_t moves24 = 0;
    for (const MixResult& r : results) {
      moves135 += r.moves135;
      moves24 += r.moves24;
    }
    mix.row()
        .cell(n)
        .cell(moves135)
        .cell(moves24)
        .cell(static_cast<double>(moves135) /
                  static_cast<double>(std::max<std::uint64_t>(1, moves24)),
              2)
        .cell(core::lemma8_domination_size());
  }
  std::cout << mix.render() << '\n';
  bench::maybe_export(mix, "lemma8_rule_mix");
  std::cout << "reading: even a daemon that maximally starves Rules 2/4 "
               "cannot push the 1/3/5-to-2/4 move ratio anywhere near the "
               "proof's L = 9 — the domination accounting is loose but "
               "sound.\n";
  return 0;
}
