// E5 — Lemma 5: the longest execution of SSRmin containing no Rule 2/4
// move is at most 3n steps. An adversarial daemon starves Rules 2/4 as
// long as anything else is enabled; we record the longest rule-2/4-free
// stretch it ever achieves and compare against the 3n bound.
#include <iostream>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/ssrmin.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "util/table.hpp"

int main() {
  using namespace ssr;
  bench::print_header(
      "E5: Rule-2/4-free execution length", "Lemma 5",
      "no schedule can avoid Rules 2 and 4 for more than 3n consecutive "
      "steps");

  const std::vector<std::size_t> sizes =
      bench::full_mode() ? std::vector<std::size_t>{3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
                         : std::vector<std::size_t>{3, 4, 6, 8, 12, 16, 24, 32};
  const int trials = bench::full_mode() ? 40 : 15;
  const int steps_per_trial = 3000;

  TextTable table({"n", "trials", "longest 2/4-free stretch", "bound 3n",
                   "within bound", "forced 2/4 moves"});

  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const core::SsrMinRing ring(n, K);
    Rng rng(4242 + n);
    std::uint64_t longest = 0;
    std::uint64_t forced_total = 0;
    for (int trial = 0; trial < trials; ++trial) {
      stab::Engine<core::SsrMinRing> engine(ring,
                                            core::random_config(ring, rng));
      stab::RuleAvoidingDaemon daemon{
          rng.split(),
          {core::SsrMinRing::kRuleSendPrimary,
           core::SsrMinRing::kRuleFixGuardTrue}};
      std::uint64_t gap = 0;
      std::vector<std::size_t> idx;
      std::vector<int> rules;
      for (int t = 0; t < steps_per_trial; ++t) {
        engine.enabled(idx, rules);
        if (idx.empty()) break;  // never happens (Lemma 4)
        const stab::EnabledView view{idx, rules, n};
        const auto selected = daemon.select(view);
        const auto executed = engine.step(selected);
        bool moved24 = false;
        for (int r : executed) {
          if (r == core::SsrMinRing::kRuleSendPrimary ||
              r == core::SsrMinRing::kRuleFixGuardTrue)
            moved24 = true;
        }
        if (moved24) {
          gap = 0;
        } else {
          ++gap;
          longest = std::max(longest, gap);
        }
      }
      forced_total += daemon.forced_steps();
    }
    table.row()
        .cell(n)
        .cell(trials)
        .cell(longest)
        .cell(3 * n)
        .cell(longest <= 3 * n)
        .cell(forced_total);
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "lemma5");
  std::cout << "paper expectation: the longest stretch never exceeds 3n and "
               "approaches it for adversarial schedules; the daemon is "
               "forced into Rule 2/4 moves (the progress guarantee behind "
               "Lemma 6).\n\n";

  // Lemma 8's domination accounting, probed empirically: the proof bounds
  // the number of Rule-1/3/5 events by L = 9 per Rule-2/4 event (plus the
  // 3n prefix), via the bipartite domination graph of Figures 5-10. The
  // worst ratio an adversary achieves in practice sits far below L.
  std::cout << "--- Lemma 8 rule-mix accounting (constant L = 9) ---\n";
  TextTable mix({"n", "moves rule 1/3/5", "moves rule 2/4",
                 "ratio 135/24", "paper bound L"});
  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const core::SsrMinRing ring(n, K);
    Rng rng(9100 + n);
    std::uint64_t moves135 = 0;
    std::uint64_t moves24 = 0;
    for (int trial = 0; trial < trials; ++trial) {
      stab::Engine<core::SsrMinRing> engine(ring,
                                            core::random_config(ring, rng));
      stab::RuleAvoidingDaemon daemon{
          rng.split(),
          {core::SsrMinRing::kRuleSendPrimary,
           core::SsrMinRing::kRuleFixGuardTrue}};
      std::vector<std::size_t> idx;
      std::vector<int> rules;
      for (int t = 0; t < steps_per_trial; ++t) {
        engine.enabled(idx, rules);
        if (idx.empty()) break;
        const stab::EnabledView view{idx, rules, n};
        const auto executed = engine.step(daemon.select(view));
        for (int r : executed) {
          if (r == core::SsrMinRing::kRuleSendPrimary ||
              r == core::SsrMinRing::kRuleFixGuardTrue) {
            ++moves24;
          } else {
            ++moves135;
          }
        }
      }
    }
    mix.row()
        .cell(n)
        .cell(moves135)
        .cell(moves24)
        .cell(static_cast<double>(moves135) /
                  static_cast<double>(std::max<std::uint64_t>(1, moves24)),
              2)
        .cell(core::lemma8_domination_size());
  }
  std::cout << mix.render() << '\n';
  bench::maybe_export(mix, "lemma8_rule_mix");
  std::cout << "reading: even a daemon that maximally starves Rules 2/4 "
               "cannot push the 1/3/5-to-2/4 move ratio anywhere near the "
               "proof's L = 9 — the domination accounting is loose but "
               "sound.\n";
  return 0;
}
