// E4 / E6 — Theorem 2 (and Lemma 8): convergence time from random initial
// configurations scales as O(n^2) under every daemon family, for SSRmin
// and for the embedded Dijkstra ring. The table reports steps-to-Lambda
// statistics and the n^2-normalized cost, whose flatness across n is the
// quadratic-order evidence.
//
// Trials are independent and fan out over sim::TrialSweep (--threads N /
// SSRING_BENCH_THREADS; default: all hardware threads). Each trial's RNG
// stream is derived from (row seed, trial index), so every statistical
// cell is bit-identical at any worker count; only wall time changes.
//
// Execution engine: by default each sweep unit is a bit-sliced
// sim::BatchEngine block replaying the scalar trials lane-for-lane, on
// the widest lane backend this CPU supports (64 u64 lanes, 256 AVX2
// lanes, 512 AVX-512 lanes; override with SSRING_LANE_BACKEND).
// --batched off forces the scalar stab::Engine path; the statistics are
// identical in every mode, per the BatchEngine differential tests. The
// run always writes BENCH_convergence.json (rows: table, daemon, n,
// trials, threads, wall_ms, batched, backend, lanes) so successive PRs
// can track the combined bit-sliced + incremental-engine + parallel-sweep
// speedup on the same rows.
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "core/ssrmin.hpp"
#include "core/ssrmin_sliced.hpp"
#include "dijkstra/kstate.hpp"
#include "dijkstra/kstate_sliced.hpp"
#include "sim/batch_dispatch.hpp"
#include "sim/batch_engine.hpp"
#include "sim/sweep.hpp"
#include "stabilizing/daemon.hpp"
#include "stabilizing/engine.hpp"
#include "util/lane_backend.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

struct TrialResult {
  bool converged = false;
  double dijkstra_part_steps = 0.0;
  double total_steps = 0.0;
};

std::int64_t elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E4/E6: convergence time vs ring size",
      "Lemmas 6-8, Theorem 2",
      "steps to a legitimate configuration are O(n^2) under the unfair "
      "distributed daemon; the embedded Dijkstra ring converges first");

  const std::vector<std::size_t> sizes =
      bench::full_mode() ? std::vector<std::size_t>{5, 10, 20, 40, 80, 160}
                         : std::vector<std::size_t>{5, 10, 20, 40, 80};
  const int trials = bench::full_mode() ? 50 : 20;
  const std::vector<std::string> daemons{
      "central-random", "distributed-synchronous",
      "distributed-random-subset", "adversary-max-index"};

  const bool batched = bench::batched_mode(argc, argv);
  const util::LaneBackend backend = util::detect_lane_backend();
  const unsigned lanes = util::lane_backend_lanes(backend);
  sim::TrialSweep sweep({.threads = bench::thread_count(argc, argv)});
  std::cout << "(sweep workers: " << sweep.threads() << ", engine: "
            << (batched ? "batched" : "scalar");
  if (batched) {
    std::cout << ", backend " << util::lane_backend_name(backend) << " x"
              << lanes << " lanes";
  }
  std::cout << ")\n\n";

  TextTable table({"daemon", "n", "trials", "mean steps", "p95 steps",
                   "max steps", "mean/n^2", "dijkstra-part mean",
                   "all converged"});
  TextTable trajectory({"table", "daemon", "n", "trials", "threads",
                        "wall_ms", "batched", "backend", "lanes"});

  for (const auto& daemon_name : daemons) {
    const bool use_batch = batched && sim::batch_daemon_supported(daemon_name);
    for (std::size_t n : sizes) {
      const auto K = static_cast<std::uint32_t>(n + 1);
      const core::SsrMinRing ring(n, K);
      const std::uint64_t budget = 80ULL * n * n + 400;
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<TrialResult> results;
      if (use_batch) {
        const auto spec = sim::lane_daemon_spec(daemon_name);
        const auto blocks = sim::plan_blocks(
            static_cast<std::uint64_t>(trials), sweep.threads(), lanes);
        const auto per_block = sweep.map(blocks.size(), [&](std::uint64_t b) {
          return sim::run_convergence_block_ssrmin(ring, spec, 1234 + n,
                                                   blocks[b], budget,
                                                   /*two_phase=*/true, backend);
        });
        results.reserve(static_cast<std::size_t>(trials));
        for (const auto& block : per_block) {
          for (const auto& trial : block) {
            TrialResult out;
            out.converged = trial.milestone.reached && trial.result.reached;
            out.dijkstra_part_steps =
                static_cast<double>(trial.milestone.steps);
            out.total_steps =
                static_cast<double>(trial.milestone.steps + trial.result.steps);
            results.push_back(out);
          }
        }
      } else {
        results = sweep.run_trials(
            1234 + n, static_cast<std::uint64_t>(trials),
            [&](std::uint64_t, Rng& rng) {
              stab::Engine<core::SsrMinRing> engine(
                  ring, core::random_config(ring, rng));
              auto daemon = stab::make_daemon(daemon_name, rng.split());
              // First milestone: the Dijkstra sub-ring is legitimate
              // (Lemma 8).
              auto dij = [&ring](const core::SsrConfig& c) {
                return core::dijkstra_part_legitimate(ring, c);
              };
              const auto r1 = stab::run_until(engine, *daemon, dij, budget);
              // Then full legitimacy (Lemma 7).
              auto legit = [&ring](const core::SsrConfig& c) {
                return core::is_legitimate(ring, c);
              };
              const auto r2 = stab::run_until(engine, *daemon, legit, budget);
              TrialResult out;
              out.converged = r1.reached && r2.reached;
              out.dijkstra_part_steps = static_cast<double>(r1.steps);
              out.total_steps = static_cast<double>(r1.steps + r2.steps);
              return out;
            });
      }
      const auto ms = elapsed_ms(t0);
      SampleSet steps;
      SampleSet dijkstra_part_steps;
      bool all_ok = true;
      for (const TrialResult& r : results) {
        if (!r.converged) {
          all_ok = false;
          continue;
        }
        dijkstra_part_steps.add(r.dijkstra_part_steps);
        steps.add(r.total_steps);
      }
      table.row()
          .cell(daemon_name)
          .cell(n)
          .cell(trials)
          .cell(steps.mean(), 1)
          .cell(steps.percentile(95), 1)
          .cell(steps.max(), 0)
          .cell(steps.mean() / (static_cast<double>(n) * n), 3)
          .cell(dijkstra_part_steps.mean(), 1)
          .cell(all_ok);
      trajectory.row()
          .cell("convergence")
          .cell(daemon_name)
          .cell(n)
          .cell(trials)
          .cell(sweep.threads())
          .cell(ms)
          .cell(use_batch)
          .cell(use_batch ? util::lane_backend_name(backend) : "scalar")
          .cell(use_batch ? lanes : 1u);
    }
  }
  std::cout << table.render() << '\n';
  bench::maybe_export(table, "convergence");

  // Baseline: plain Dijkstra ring against its published bound.
  TextTable base({"protocol", "n", "mean steps", "max steps",
                  "bound 3n(n-1)/2", "max within bound"});
  for (std::size_t n : sizes) {
    const auto K = static_cast<std::uint32_t>(n + 1);
    const dijkstra::KStateRing ring(n, K);
    const std::uint64_t budget = 8 * dijkstra::convergence_step_bound(n);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<double> results;
    if (batched) {
      const auto spec = sim::lane_daemon_spec("central-random");
      const auto blocks = sim::plan_blocks(static_cast<std::uint64_t>(trials),
                                           sweep.threads(), lanes);
      const auto per_block = sweep.map(blocks.size(), [&](std::uint64_t b) {
        return sim::run_convergence_block_kstate(ring, spec, 777 + n,
                                                 blocks[b], budget,
                                                 /*two_phase=*/false, backend);
      });
      results.reserve(static_cast<std::size_t>(trials));
      for (const auto& block : per_block) {
        for (const auto& trial : block) {
          results.push_back(trial.result.reached
                                ? static_cast<double>(trial.result.steps)
                                : -1.0);
        }
      }
    } else {
      results = sweep.run_trials(
          777 + n, static_cast<std::uint64_t>(trials),
          [&](std::uint64_t, Rng& rng) {
            stab::Engine<dijkstra::KStateRing> engine(
                ring, dijkstra::random_config(ring, rng));
            stab::CentralRandomDaemon daemon{rng.split()};
            auto legit = [&ring](const dijkstra::KStateConfig& c) {
              return dijkstra::is_legitimate(ring, c);
            };
            const auto r = stab::run_until(engine, daemon, legit, budget);
            return r.reached ? static_cast<double>(r.steps) : -1.0;
          });
    }
    const auto ms = elapsed_ms(t0);
    SampleSet steps;
    for (double s : results) {
      if (s >= 0.0) steps.add(s);
    }
    const auto bound = dijkstra::convergence_step_bound(n);
    base.row()
        .cell("dijkstra")
        .cell(n)
        .cell(steps.mean(), 1)
        .cell(steps.max(), 0)
        .cell(bound)
        // The strict Definition-form target may cost up to one extra
        // circulation over the "exactly one token" bound.
        .cell(steps.max() <= static_cast<double>(bound + 2 * n));
    trajectory.row()
        .cell("dijkstra_baseline")
        .cell("central-random")
        .cell(n)
        .cell(trials)
        .cell(sweep.threads())
        .cell(ms)
        .cell(batched)
        .cell(batched ? util::lane_backend_name(backend) : "scalar")
        .cell(batched ? lanes : 1u);
  }
  std::cout << base.render() << '\n';
  bench::maybe_export(base, "convergence_dijkstra_baseline");

  // Backend comparison: the same 512-trial workload on the 64-lane u64
  // backend (the only backend earlier revisions had) and on the widest
  // backend this CPU supports, in one process. The quick-mode rows above
  // use 20 trials — fewer than one u64 word — so lane width cannot show
  // up there; here every trial count fills the wide lanes and the
  // per-lane outcomes are byte-identical by the lane-width invariance
  // contract, so the wall-time delta is pure backend speedup.
  if (batched) {
    const std::size_t cmp_n = 512;
    const int cmp_trials = 512;
    // Synchronous daemon: every enabled process fires, so a step is pure
    // plane arithmetic with no per-lane RNG draws -- the path where lane
    // width translates directly into wall time.
    const std::string cmp_daemon = "distributed-synchronous";
    const auto cmp_K = static_cast<std::uint32_t>(cmp_n + 1);
    const core::SsrMinRing cmp_ring(cmp_n, cmp_K);
    const std::uint64_t cmp_budget = 80ULL * cmp_n * cmp_n + 400;
    const auto spec = sim::lane_daemon_spec(cmp_daemon);
    std::int64_t wall_u64 = 0;
    for (const util::LaneBackend cmp_backend :
         {util::LaneBackend::kU64, backend}) {
      const unsigned cmp_lanes = util::lane_backend_lanes(cmp_backend);
      const auto blocks = sim::plan_blocks(
          static_cast<std::uint64_t>(cmp_trials), sweep.threads(), cmp_lanes);
      const auto t0 = std::chrono::steady_clock::now();
      const auto per_block = sweep.map(blocks.size(), [&](std::uint64_t b) {
        return sim::run_convergence_block_ssrmin(cmp_ring, spec, 99,
                                                 blocks[b], cmp_budget,
                                                 /*two_phase=*/true,
                                                 cmp_backend);
      });
      const auto ms = elapsed_ms(t0);
      std::uint64_t converged = 0;
      for (const auto& block : per_block) {
        for (const auto& trial : block) {
          converged += (trial.milestone.reached && trial.result.reached);
        }
      }
      if (cmp_backend == util::LaneBackend::kU64) wall_u64 = ms;
      std::cout << "backend comparison " << cmp_daemon << " n=" << cmp_n
                << " trials=" << cmp_trials << " backend "
                << util::lane_backend_name(cmp_backend) << " x" << cmp_lanes
                << ": " << ms << " ms (" << converged << "/" << cmp_trials
                << " converged)";
      if (cmp_backend != util::LaneBackend::kU64 && ms > 0) {
        std::cout << " -- " << static_cast<double>(wall_u64) /
                                   static_cast<double>(ms)
                  << "x vs u64";
      }
      std::cout << '\n';
      trajectory.row()
          .cell("backend_comparison")
          .cell(cmp_daemon)
          .cell(cmp_n)
          .cell(cmp_trials)
          .cell(sweep.threads())
          .cell(ms)
          .cell(true)
          .cell(util::lane_backend_name(cmp_backend))
          .cell(cmp_lanes);
      if (backend == util::LaneBackend::kU64) break;
    }
    std::cout << '\n';
  }
  {
    std::ofstream json("BENCH_convergence.json");
    json << trajectory.to_json(2) << '\n';
  }
  std::cout << "(wrote BENCH_convergence.json)\n";
  std::cout << "paper expectation: mean/n^2 stays roughly flat as n grows "
               "(Theorem 2's O(n^2)); the Dijkstra sub-ring converges "
               "before full legitimacy (Lemma 8 then Lemma 7).\n";
  return 0;
}
