// Shared helpers for the experiment harness binaries.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "util/table.hpp"

namespace ssr::bench {

/// Heavier sweeps (larger n, more seeds, exhaustive n=5 model checking) are
/// enabled with SSRING_BENCH_FULL=1; the default configuration keeps every
/// binary comfortably under a minute on modest hardware.
inline bool full_mode() {
  const char* v = std::getenv("SSRING_BENCH_FULL");
  return v != nullptr && std::string(v) == "1";
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_artifact,
                         const std::string& claim) {
  std::cout << "=== " << experiment << " ===\n"
            << "paper artifact: " << paper_artifact << '\n'
            << "claim under test: " << claim << "\n\n";
}

/// If SSRING_BENCH_EXPORT_DIR is set, writes the table as both
/// <dir>/<name>.csv and <dir>/<name>.json for downstream plotting.
inline void maybe_export(const TextTable& table, const std::string& name) {
  const char* dir = std::getenv("SSRING_BENCH_EXPORT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string base = std::string(dir) + "/" + name;
  {
    std::ofstream csv(base + ".csv");
    csv << table.to_csv();
  }
  {
    std::ofstream json(base + ".json");
    json << table.to_json(2) << '\n';
  }
  std::cout << "(exported " << base << ".{csv,json})\n";
}

}  // namespace ssr::bench
