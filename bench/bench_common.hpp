// Shared helpers for the experiment harness binaries.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "util/table.hpp"

namespace ssr::bench {

/// Heavier sweeps (larger n, more seeds, exhaustive n=5 model checking) are
/// enabled with SSRING_BENCH_FULL=1; the default configuration keeps every
/// binary comfortably under a minute on modest hardware.
inline bool full_mode() {
  const char* v = std::getenv("SSRING_BENCH_FULL");
  return v != nullptr && std::string(v) == "1";
}

/// Worker count for the trial-sweep benches: `--threads N` on the command
/// line wins, then the SSRING_BENCH_THREADS environment variable, then 0
/// (= one worker per hardware thread). The emitted statistics are
/// bit-identical at every worker count (sim::TrialSweep's contract);
/// threads only change wall time.
inline std::size_t thread_count(int argc, char** argv) {
  const char* value = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") value = argv[i + 1];
  }
  if (value == nullptr) value = std::getenv("SSRING_BENCH_THREADS");
  if (value == nullptr) return 0;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : 0;
}

/// Batched (bit-sliced) execution for the Monte-Carlo benches: on by
/// default where the daemon/metric supports it; `--batched off` (or
/// SSRING_BENCH_BATCHED=0) forces the scalar engines, `--batched on`
/// restores the default. Both modes emit bit-identical statistics (the
/// BatchEngine lane contract); the flag exists to measure the speedup and
/// to fall back if a daemon has no lane replay.
inline bool batched_mode(int argc, char** argv) {
  const char* value = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--batched") value = argv[i + 1];
  }
  if (value == nullptr) value = std::getenv("SSRING_BENCH_BATCHED");
  if (value == nullptr) return true;
  const std::string v(value);
  return !(v == "off" || v == "0" || v == "no" || v == "false");
}

inline void print_header(const std::string& experiment,
                         const std::string& paper_artifact,
                         const std::string& claim) {
  std::cout << "=== " << experiment << " ===\n"
            << "paper artifact: " << paper_artifact << '\n'
            << "claim under test: " << claim << "\n\n";
}

/// If SSRING_BENCH_EXPORT_DIR is set, writes the table as both
/// <dir>/<name>.csv and <dir>/<name>.json for downstream plotting.
inline void maybe_export(const TextTable& table, const std::string& name) {
  const char* dir = std::getenv("SSRING_BENCH_EXPORT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string base = std::string(dir) + "/" + name;
  {
    std::ofstream csv(base + ".csv");
    csv << table.to_csv();
  }
  {
    std::ofstream json(base + ".json");
    json << table.to_json(2) << '\n';
  }
  std::cout << "(exported " << base << ".{csv,json})\n";
}

}  // namespace ssr::bench
