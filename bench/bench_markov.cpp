// E17 — exact average-case stabilization: expected hitting times to
// Lambda under the uniform-random central daemon, solved exactly on the
// full configuration graph and contrasted with the adversarial worst case
// (E3). Quantifies how pessimistic Theorem 2's O(n^2) adversary is
// compared to typical randomized scheduling.
//
// Each (protocol, n, K) row is an independent solve, so rows fan out as
// units over sim::TrialSweep (--threads / SSRING_BENCH_THREADS) with the
// inner checker pinned to one thread; results return in row order, so the
// table is bit-identical at any worker count. Wall time is reported for
// the whole sweep rather than per row, keeping the exported table free of
// timing noise.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"
#include "verify/checkers.hpp"
#include "verify/markov.hpp"

namespace {

using namespace ssr;

struct RowSpec {
  const char* protocol;
  std::size_t n;
  std::uint32_t k;
};

struct RowResult {
  std::uint64_t configs = 0;
  double mean_expected = 0.0;
  double max_expected = 0.0;
  std::uint64_t worst_case_steps = 0;
  std::uint64_t iterations = 0;
};

template <typename Checker>
RowResult solve_row(const Checker& checker, verify::CheckOptions options) {
  options.keep_heights = true;
  options.threads = 1;  // rows are the parallel unit; keep the solve solo
  const auto check = checker.run(options);
  const auto hit = verify::expected_hitting_times(checker);
  RowResult out;
  out.configs = checker.codec().total();
  out.mean_expected = hit.mean_expected;
  out.max_expected = hit.max_expected;
  out.worst_case_steps = check.worst_case_steps;
  out.iterations = hit.iterations;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E17: exact expected stabilization time",
      "complements Theorem 2 (worst case) with the exact average case",
      "E[steps to Lambda] under the uniform central daemon, solved on the "
      "full configuration graph");

  std::vector<RowSpec> rows{{"ssrmin", 3, 4}, {"ssrmin", 3, 5},
                            {"ssrmin", 4, 5}};
  if (bench::full_mode()) rows.push_back({"ssrmin", 4, 6});
  rows.push_back({"dijkstra", 3, 4});
  rows.push_back({"dijkstra", 4, 5});
  rows.push_back({"dijkstra", 5, 6});

  sim::TrialSweep sweep({.threads = bench::thread_count(argc, argv)});
  std::cout << "(sweep workers: " << sweep.threads() << ")\n\n";
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = sweep.map(rows.size(), [&](std::uint64_t i) {
    const RowSpec& spec = rows[i];
    if (std::string(spec.protocol) == "ssrmin") {
      verify::CheckOptions options;  // defaults: privileged in [1,2]
      return solve_row(verify::make_ssrmin_checker(spec.n, spec.k), options);
    }
    verify::CheckOptions options;
    options.min_privileged = 1;
    options.max_privileged = 1;
    return solve_row(verify::make_kstate_checker(spec.n, spec.k), options);
  });
  const auto total_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  TextTable table({"protocol", "n", "K", "configs", "mean E[steps]",
                   "max E[steps]", "worst case (adversary)",
                   "max/worst ratio", "solver sweeps"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowSpec& spec = rows[i];
    const RowResult& r = results[i];
    table.row()
        .cell(spec.protocol)
        .cell(spec.n)
        .cell(spec.k)
        .cell(r.configs)
        .cell(r.mean_expected, 2)
        .cell(r.max_expected, 2)
        .cell(r.worst_case_steps)
        .cell(r.max_expected / static_cast<double>(r.worst_case_steps), 3)
        .cell(r.iterations);
  }

  std::cout << table.render() << '\n';
  bench::maybe_export(table, "markov");
  std::cout << "(all rows solved in " << total_ms << " ms with "
            << sweep.threads() << " workers)\n";
  std::cout << "reading: even the worst *starting* configuration stabilizes "
               "in far fewer expected steps than the adversarial bound — "
               "the randomized daemon is not the enemy; the scheduler is.\n";
  return 0;
}
