// E17 — exact average-case stabilization: expected hitting times to
// Lambda under the uniform-random central daemon, solved exactly on the
// full configuration graph and contrasted with the adversarial worst case
// (E3). Quantifies how pessimistic Theorem 2's O(n^2) adversary is
// compared to typical randomized scheduling.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/legitimacy.hpp"
#include "util/table.hpp"
#include "verify/checkers.hpp"
#include "verify/markov.hpp"

int main() {
  using namespace ssr;
  bench::print_header(
      "E17: exact expected stabilization time",
      "complements Theorem 2 (worst case) with the exact average case",
      "E[steps to Lambda] under the uniform central daemon, solved on the "
      "full configuration graph");

  TextTable table({"protocol", "n", "K", "configs", "mean E[steps]",
                   "max E[steps]", "worst case (adversary)",
                   "max/worst ratio", "solver sweeps", "ms"});

  auto add_ssrmin = [&](std::size_t n, std::uint32_t K) {
    auto checker = verify::make_ssrmin_checker(n, K);
    verify::CheckOptions options;
    options.keep_heights = true;
    const auto check = checker.run(options);
    const auto t0 = std::chrono::steady_clock::now();
    const auto hit = verify::expected_hitting_times(checker);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    table.row()
        .cell("ssrmin")
        .cell(n)
        .cell(K)
        .cell(checker.codec().total())
        .cell(hit.mean_expected, 2)
        .cell(hit.max_expected, 2)
        .cell(check.worst_case_steps)
        .cell(hit.max_expected / static_cast<double>(check.worst_case_steps),
              3)
        .cell(hit.iterations)
        .cell(static_cast<std::uint64_t>(ms));
  };
  auto add_dijkstra = [&](std::size_t n, std::uint32_t K) {
    auto checker = verify::make_kstate_checker(n, K);
    verify::CheckOptions options;
    options.keep_heights = true;
    options.min_privileged = 1;
    options.max_privileged = 1;
    const auto check = checker.run(options);
    const auto hit = verify::expected_hitting_times(checker);
    table.row()
        .cell("dijkstra")
        .cell(n)
        .cell(K)
        .cell(checker.codec().total())
        .cell(hit.mean_expected, 2)
        .cell(hit.max_expected, 2)
        .cell(check.worst_case_steps)
        .cell(hit.max_expected / static_cast<double>(check.worst_case_steps),
              3)
        .cell(hit.iterations)
        .cell(std::uint64_t{0});
  };

  add_ssrmin(3, 4);
  add_ssrmin(3, 5);
  add_ssrmin(4, 5);
  add_dijkstra(3, 4);
  add_dijkstra(4, 5);
  add_dijkstra(5, 6);
  if (bench::full_mode()) add_ssrmin(4, 6);

  std::cout << table.render() << '\n';
  bench::maybe_export(table, "markov");
  std::cout << "reading: even the worst *starting* configuration stabilizes "
               "in far fewer expected steps than the adversarial bound — "
               "the randomized daemon is not the enemy; the scheduler is.\n";
  return 0;
}
