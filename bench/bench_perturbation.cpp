// E15 — single-transient-fault behavior (the superstabilization-flavored
// future work of §6): exhaustive analysis of every 1-process corruption of
// every legitimate configuration, with exact worst-case recovery from the
// model checker's height function, cross-validated by replaying the
// optimal adversary.
//
// The (n, K) spaces are independent, so they fan out as units over
// sim::TrialSweep (--threads / SSRING_BENCH_THREADS); reports come back
// in space order, so the table is bit-identical at any worker count. The
// largest space's report is reused for the histogram instead of being
// recomputed.
#include <iostream>

#include "bench_common.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"
#include "verify/adversary.hpp"
#include "verify/checkers.hpp"
#include "verify/perturbation.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  bench::print_header(
      "E15: exhaustive single-fault analysis",
      "paper §6 future work (superstabilization), Lemma 3",
      "a single corrupted process never extinguishes all tokens, and "
      "recovers in far fewer steps than the global worst case");

  TextTable table({"n", "K", "fault cases", "still legit", "safety >=1 token",
                   "max recovery", "mean recovery", "global worst case"});
  std::vector<std::pair<std::size_t, std::uint32_t>> spaces{{3, 4}, {3, 6},
                                                            {4, 5}};
  if (bench::full_mode()) spaces.push_back({4, 6});

  sim::TrialSweep sweep({.threads = bench::thread_count(argc, argv)});
  std::cout << "(sweep workers: " << sweep.threads() << ")\n\n";
  const auto reports =
      sweep.map(spaces.size(), [&](std::uint64_t i) {
        const auto [n, K] = spaces[i];
        return verify::analyze_single_faults(n, K);
      });
  for (std::size_t i = 0; i < spaces.size(); ++i) {
    const auto [n, K] = spaces[i];
    const verify::PerturbationReport& r = reports[i];
    table.row()
        .cell(n)
        .cell(K)
        .cell(r.cases)
        .cell(r.still_legitimate)
        .cell(r.safety_preserved)
        .cell(r.max_recovery_steps)
        .cell(r.mean_recovery_steps, 2)
        .cell(r.global_worst_case);
  }
  std::cout << table.render() << '\n';

  // Recovery-time distribution for the largest space analyzed (reusing
  // its report from the sweep above).
  const auto [n, K] = spaces.back();
  const verify::PerturbationReport& r = reports.back();
  std::cout << "recovery-step distribution for n=" << n << ", K=" << K
            << " (cases per exact worst-case step count):\n";
  TextTable hist({"steps", "cases"});
  for (std::size_t s = 0; s < r.histogram.size(); ++s) {
    if (r.histogram[s] != 0) hist.row().cell(s).cell(r.histogram[s]);
  }
  std::cout << hist.render() << '\n';
  bench::maybe_export(table, "perturbation");

  // Cross-validation: the optimal adversary realizes the checker's global
  // worst case exactly.
  auto checker = verify::make_ssrmin_checker(4, 5);
  verify::CheckOptions options;
  options.keep_heights = true;
  const verify::CheckReport check = checker.run(options);
  const auto worst = verify::worst_configuration(check);
  const auto replay = verify::replay_worst_execution(checker, check, worst);
  std::cout << "optimal-adversary replay (n=4, K=5): predicted worst case "
            << check.worst_case_steps << " steps, replay took " << replay.steps
            << " steps, potential decreased by one per step: "
            << (replay.potential_decreased_by_one ? "yes" : "NO") << "\n";
  std::cout << "\nexpectation: 'safety' is yes everywhere (Lemma 3 holds "
               "even mid-fault); mean recovery << global worst case (the "
               "locality superstabilization asks for).\n";
  return 0;
}
