// E27 — multi-ring reactor scaling: how many independent SSRmin rings can
// one epoll event loop host, and what does token-handover latency look
// like when 1k/10k/100k rings share a handful of sockets and threads?
//
// Each row runs the real UDP transport (epoll + recvmmsg/sendmmsg, v2
// wire frames) for a fixed wall-clock window and reports the aggregate
// handover rate plus the p50/p99/p99.9 handover inter-arrival latency
// across all rings. The per-ring protocol work is identical to the
// single-ring runtimes; the only thing that changes with scale is how
// often each ring gets the loop's attention — which is exactly what the
// latency tail measures.
//
//   --smoke        tiny run for CI gating (exit 1 on structural failure)
//   --full         1k/10k/100k rows (also SSRING_BENCH_FULL=1)
//   --json FILE    write the table as JSON rows (BENCH_multiring.json)
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/reactor.hpp"
#include "util/table.hpp"

namespace {

using namespace ssr;

struct ScaleRow {
  std::size_t rings;
  std::size_t shards;
  std::chrono::milliseconds duration;
};

runtime::ReactorReport run_scale(const ScaleRow& row) {
  runtime::ReactorConfig config;
  config.rings = row.rings;
  config.nodes = 4;
  config.protocol = runtime::RingProtocolKind::kSsrMin;
  config.shards = row.shards;
  config.transport = runtime::ReactorTransport::kUdp;
  config.start = runtime::RingStart::kRandom;
  config.seed = 27;
  config.refresh_interval = std::chrono::microseconds(5000);
  runtime::MultiRingReactor reactor(config);
  return reactor.run(
      std::chrono::duration_cast<std::chrono::microseconds>(row.duration));
}

void add_row(TextTable& table, const ScaleRow& scale,
             const runtime::ReactorReport& r) {
  table.row()
      .cell(r.rings)
      .cell(r.shards)
      .cell(static_cast<std::uint64_t>(scale.duration.count()))
      .cell(r.handovers)
      .cell(r.handovers_per_sec, 0)
      .cell(r.p50_us, 1)
      .cell(r.p99_us, 1)
      .cell(r.p999_us, 1)
      .cell(r.frames_sent)
      .cell(r.frames_received)
      .cell(r.kernel_rx_drops)
      .cell(r.rings_legitimate);
}

int smoke() {
  const ScaleRow scale{256, 2, std::chrono::milliseconds(150)};
  const runtime::ReactorReport r = run_scale(scale);
  const bool ok = r.handovers > 0 && r.frames_received > 0 &&
                  r.rings_legitimate > 200 && r.shards == 2;
  std::cout << "bench_multiring smoke: rings=" << r.rings
            << " legit=" << r.rings_legitimate << " handovers=" << r.handovers
            << " handovers/s=" << static_cast<std::uint64_t>(
                   r.handovers_per_sec)
            << " p99_us=" << r.p99_us << (ok ? " OK" : " FAIL") << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return smoke();
  }
  bool full = bench::full_mode();
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  bench::print_header(
      "E27 multi-ring reactor scaling",
      "section 6 runtime discussion (extended)",
      "one epoll loop with <= 4 shard threads hosts 1k-100k independent "
      "rings; aggregate handover throughput grows with ring count while "
      "the per-ring latency tail degrades gracefully");

  std::vector<ScaleRow> scales;
  if (full) {
    scales = {{1000, 4, std::chrono::milliseconds(1000)},
              {10000, 4, std::chrono::milliseconds(1000)},
              {100000, 4, std::chrono::milliseconds(2000)}};
  } else {
    scales = {{1000, 2, std::chrono::milliseconds(300)},
              {10000, 4, std::chrono::milliseconds(400)}};
  }

  TextTable table({"rings", "shards", "duration_ms", "handovers",
                   "handovers_per_sec", "p50_us", "p99_us", "p999_us",
                   "frames_sent", "frames_received", "kernel_rx_drops",
                   "rings_legitimate"});
  for (const ScaleRow& scale : scales) {
    const runtime::ReactorReport r = run_scale(scale);
    add_row(table, scale, r);
  }
  std::cout << table.render();
  bench::maybe_export(table, "multiring");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << '\n';
      return 1;
    }
    out << table.to_json(2) << '\n';
    std::cout << "json written to " << json_path << '\n';
  }
  return 0;
}
